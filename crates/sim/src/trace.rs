//! Execution traces: the simulator's analogue of TensorFlow's
//! `RunMetadata` (Sec. 4 of the paper) — per-op execution records and
//! per-tensor transfer records, consumed by the adaptive cost models.

use fastt_cluster::{DeviceId, Topology};
use fastt_graph::OpId;
use fastt_telemetry::jobj;
use fastt_telemetry::json::Value;

/// One op execution: where and when it ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRecord {
    /// The executed op.
    pub op: OpId,
    /// Device it ran on.
    pub device: DeviceId,
    /// Time the op became runnable (entered its device's ready queue);
    /// `-1.0` if it never did.
    pub ready: f64,
    /// Start time (seconds from iteration start).
    pub start: f64,
    /// End time.
    pub end: f64,
}

impl OpRecord {
    /// Execution duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Seconds spent runnable-but-not-running, waiting behind other work on
    /// the same device (0 when the op never ran).
    pub fn queue_wait(&self) -> f64 {
        if self.start < 0.0 || self.ready < 0.0 {
            0.0
        } else {
            (self.start - self.ready).max(0.0)
        }
    }
}

/// One inter-device tensor transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// Producer op.
    pub src_op: OpId,
    /// Consumer op.
    pub dst_op: OpId,
    /// Source device.
    pub src_dev: DeviceId,
    /// Destination device.
    pub dst_dev: DeviceId,
    /// Bytes moved.
    pub bytes: u64,
    /// Time the transfer started (after queueing on its channel).
    pub start: f64,
    /// Time the data arrived.
    pub end: f64,
}

impl TransferRecord {
    /// Transfer duration (including channel latency, excluding queueing).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One executed collective (a [`fastt_graph::CollectiveKind`]-annotated
/// node's aggregation), spanning all its ring phases.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveRecord {
    /// The collective-annotated node.
    pub node: OpId,
    /// The pattern that ran.
    pub kind: fastt_graph::CollectiveKind,
    /// Participating devices, in ring order.
    pub participants: Vec<DeviceId>,
    /// Full tensor bytes reduced/moved.
    pub bytes: u64,
    /// Time the last producer finished (collective became eligible).
    pub start: f64,
    /// Time the final ring phase's slowest hop completed.
    pub end: f64,
}

impl CollectiveRecord {
    /// Wall-clock duration of the collective.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One sample of a device's resident memory over time (recorded only when
/// `SimConfig::record_mem_timeline` is set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSample {
    /// Sample time (seconds from iteration start).
    pub t: f64,
    /// Sampled device.
    pub device: DeviceId,
    /// Resident bytes at `t`.
    pub bytes: u64,
}

/// The result of simulating one training iteration.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Per-op execution records, indexed by `OpId`.
    pub op_records: Vec<OpRecord>,
    /// All inter-device transfers, in completion order. Multi-hop routes and
    /// ring collectives contribute one record per *physical hop*, so every
    /// record is an observation of a single link — exactly what the
    /// per-link-class communication cost model wants to learn from.
    pub transfers: Vec<TransferRecord>,
    /// Collectives executed this iteration (empty for graphs without
    /// collective-annotated nodes).
    pub collectives: Vec<CollectiveRecord>,
    /// End-to-end iteration time, including the fixed framework overhead.
    pub makespan: f64,
    /// Per-device busy (compute) seconds.
    pub device_busy: Vec<f64>,
    /// Per-device peak memory (bytes).
    pub peak_mem: Vec<u64>,
    /// Total seconds transfers spent queued behind a busy channel.
    pub contention: f64,
    /// Event-loop steps the simulator processed.
    pub steps: u64,
    /// Per-device memory-over-time samples; empty unless the run asked for
    /// them (`SimConfig::record_mem_timeline`).
    pub mem_timeline: Vec<MemSample>,
    /// Op executions repeated because of injected transient faults
    /// (`FaultKind::TransientOp`); always `0` without a fault schedule.
    pub reexecutions: u64,
    /// Transfer hop attempts repeated because of injected link flaps
    /// (`FaultKind::LinkFlap`); always `0` without a fault schedule.
    pub comm_retries: u64,
}

impl RunTrace {
    /// The record for a specific op.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn op_record(&self, op: OpId) -> &OpRecord {
        &self.op_records[op.index()]
    }

    /// Sum of all op execution durations (the paper's Fig. 5
    /// "computation time").
    pub fn total_compute_time(&self) -> f64 {
        self.op_records.iter().map(|r| r.duration()).sum()
    }

    /// Sum of all transfer durations (the paper's Fig. 5 "memcpy time").
    pub fn total_memcpy_time(&self) -> f64 {
        self.transfers.iter().map(|t| t.duration()).sum()
    }

    /// Training speed for a given batch size, in samples per second —
    /// the paper's headline metric (Sec. 6.2). A degenerate zero-length
    /// iteration (e.g. an empty graph with no overhead configured) reports
    /// `0.0` rather than infinity.
    pub fn samples_per_sec(&self, batch: u64) -> f64 {
        if self.makespan > 0.0 {
            batch as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Largest peak memory across devices.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of the makespan each device spent computing.
    pub fn utilization(&self) -> Vec<f64> {
        self.device_busy
            .iter()
            .map(|b| {
                if self.makespan > 0.0 {
                    b / self.makespan
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Per-device totals of time ops spent ready-but-queued.
    pub fn device_queue_wait(&self) -> Vec<f64> {
        let n = self.device_busy.len();
        let mut w = vec![0.0; n];
        for r in &self.op_records {
            if r.device.index() < n {
                w[r.device.index()] += r.queue_wait();
            }
        }
        w
    }

    /// The `n` ops that waited longest in a ready queue, worst first.
    pub fn top_queue_waits(&self, n: usize) -> Vec<(OpId, f64)> {
        let mut waits: Vec<(OpId, f64)> = self
            .op_records
            .iter()
            .map(|r| (r.op, r.queue_wait()))
            .filter(|(_, w)| *w > 0.0)
            .collect();
        waits.sort_by(|a, b| b.1.total_cmp(&a.1));
        waits.truncate(n);
        waits
    }

    /// Renders the trace in Chrome's trace-event JSON format (open in
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)): one row
    /// per device for op execution, one row per source→destination device
    /// pair for transfers.
    ///
    /// `names` supplies the op labels (pass the graph's op names, indexed by
    /// `OpId`); missing entries fall back to the op id.
    pub fn to_chrome_trace(&self, names: &[String]) -> String {
        self.render_chrome(names, None)
    }

    /// Like [`RunTrace::to_chrome_trace`], with the topology available:
    /// transfer rows collapse onto the *physical channels* of `topo`
    /// (`Topology::channel_key` — PCIe pair, NIC, host link), Perfetto
    /// metadata events name every process/thread row, and per-device memory
    /// counter tracks are emitted when the trace carries a memory timeline.
    pub fn to_chrome_trace_full(&self, names: &[String], topo: &Topology) -> String {
        self.render_chrome(names, Some(topo))
    }

    fn render_chrome(&self, names: &[String], topo: Option<&Topology>) -> String {
        let mut events: Vec<Value> = Vec::new();
        let name_of = |op: OpId| -> String {
            names
                .get(op.index())
                .cloned()
                .unwrap_or_else(|| op.to_string())
        };
        if let Some(topo) = topo {
            events.push(meta_event("process_name", 0, None, "compute"));
            events.push(meta_event("process_name", 1, None, "transfers"));
            events.push(meta_event("process_name", 2, None, "memory"));
            for d in 0..topo.device_count() {
                let label = &topo.device(DeviceId(d as u16)).name;
                events.push(meta_event("thread_name", 0, Some(d as u64), label));
            }
        }
        for r in &self.op_records {
            if r.start < 0.0 {
                continue;
            }
            events.push(jobj! {
                "name" => name_of(r.op).as_str(),
                "cat" => "op",
                "ph" => "X",
                "ts" => r.start * 1e6,
                "dur" => r.duration() * 1e6,
                "pid" => 0u64,
                "tid" => r.device.0 as u64,
            });
        }
        // Transfer rows. Without a topology, fall back to one row per
        // (src, dst) device pair; `DeviceId` is 16-bit, so packing the pair
        // into disjoint halves of the tid can never collide (the seed's
        // `src * 1000 + dst` encoding aliased for topologies of 1000+
        // devices). With a topology, rows are the actual shared channels.
        let mut channel_rows: Vec<((u32, u32), String)> = Vec::new();
        let mut tid_of = |t: &TransferRecord| -> u64 {
            match topo {
                None => ((t.src_dev.0 as u64) << 16) | t.dst_dev.0 as u64,
                Some(topo) => {
                    let key = topo.channel_key(t.src_dev, t.dst_dev);
                    let idx = match channel_rows.iter().position(|(k, _)| *k == key) {
                        Some(i) => i,
                        None => {
                            channel_rows.push((key, channel_label(key)));
                            channel_rows.len() - 1
                        }
                    };
                    idx as u64
                }
            }
        };
        for t in &self.transfers {
            let tid = tid_of(t);
            events.push(jobj! {
                "name" => format!("{} -> {} ({} B)", name_of(t.src_op), name_of(t.dst_op), t.bytes).as_str(),
                "cat" => "transfer",
                "ph" => "X",
                "ts" => t.start * 1e6,
                "dur" => t.duration() * 1e6,
                "pid" => 1u64,
                "tid" => tid,
            });
        }
        if topo.is_some() {
            for (i, (_, label)) in channel_rows.iter().enumerate() {
                events.push(meta_event("thread_name", 1, Some(i as u64), label));
            }
            for s in &self.mem_timeline {
                events.push(jobj! {
                    "name" => format!("mem gpu:{}", s.device.0).as_str(),
                    "cat" => "memory",
                    "ph" => "C",
                    "ts" => s.t * 1e6,
                    "pid" => 2u64,
                    "args" => jobj! { "bytes" => s.bytes },
                });
            }
        }
        jobj! { "traceEvents" => Value::Arr(events) }.to_string()
    }
}

/// A Chrome trace "M" (metadata) event naming a process or thread row.
fn meta_event(kind: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::from(kind)),
        ("ph".to_string(), Value::from("M")),
        ("pid".to_string(), Value::from(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Value::from(tid)));
    }
    fields.push(("args".to_string(), jobj! { "name" => label }));
    Value::Obj(fields)
}

/// Human label for a channel row, from the key scheme documented on
/// `Topology::channel_key`.
fn channel_label(key: (u32, u32)) -> String {
    match key {
        (s, _) if s >= 0x3_0000 => format!("host->gpu:{}", s - 0x3_0000),
        (s, _) if s >= 0x2_0000 => format!("gpu:{}->host", s - 0x2_0000),
        (s, d) if s >= 0x1_0000 => format!("net srv{}->srv{}", s - 0x1_0000, d - 0x1_0000),
        (s, d) => format!("pcie gpu:{s}->gpu:{d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_telemetry::json::Value;

    fn trace() -> RunTrace {
        RunTrace {
            op_records: vec![
                OpRecord {
                    op: OpId(0),
                    device: DeviceId(0),
                    ready: 0.0,
                    start: 0.0,
                    end: 1.0,
                },
                OpRecord {
                    op: OpId(1),
                    device: DeviceId(1),
                    ready: 1.5,
                    start: 1.5,
                    end: 2.0,
                },
            ],
            transfers: vec![TransferRecord {
                src_op: OpId(0),
                dst_op: OpId(1),
                src_dev: DeviceId(0),
                dst_dev: DeviceId(1),
                bytes: 100,
                start: 1.0,
                end: 1.5,
            }],
            collectives: Vec::new(),
            makespan: 2.0,
            device_busy: vec![1.0, 0.5],
            peak_mem: vec![10, 20],
            contention: 0.0,
            steps: 3,
            mem_timeline: Vec::new(),
            reexecutions: 0,
            comm_retries: 0,
        }
    }

    #[test]
    fn aggregates() {
        let t = trace();
        assert!((t.total_compute_time() - 1.5).abs() < 1e-12);
        assert!((t.total_memcpy_time() - 0.5).abs() < 1e-12);
        assert!((t.samples_per_sec(64) - 32.0).abs() < 1e-9);
        assert_eq!(t.max_peak_mem(), 20);
    }

    #[test]
    fn samples_per_sec_is_zero_for_zero_makespan() {
        // A degenerate run must not report infinite throughput.
        let mut t = trace();
        t.makespan = 0.0;
        assert_eq!(t.samples_per_sec(64), 0.0);
        assert!(t.samples_per_sec(64).is_finite());
    }

    #[test]
    fn op_record_lookup() {
        let t = trace();
        assert_eq!(t.op_record(OpId(1)).device, DeviceId(1));
        assert!((t.op_record(OpId(0)).duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_fractions() {
        let t = trace();
        let u = t.utilization();
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn queue_wait_accounting() {
        let mut t = trace();
        t.op_records[1].ready = 1.0; // ready at 1.0, started at 1.5
        assert!((t.op_records[1].queue_wait() - 0.5).abs() < 1e-12);
        let per_dev = t.device_queue_wait();
        assert_eq!(per_dev.len(), 2);
        assert!((per_dev[1] - 0.5).abs() < 1e-12);
        let top = t.top_queue_waits(10);
        assert_eq!(top, vec![(OpId(1), 0.5)]);
        // unexecuted ops contribute nothing
        t.op_records[0].start = -1.0;
        assert_eq!(t.op_records[0].queue_wait(), 0.0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let t = trace();
        let names = vec!["a".to_string(), "b".to_string()];
        let json = t.to_chrome_trace(&names);
        let v = Value::parse(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3); // 2 ops + 1 transfer
        assert!(events.iter().any(|e| e["name"] == "a"));
        assert!(events.iter().any(|e| e["cat"] == "transfer"));
        // timestamps in microseconds
        assert_eq!(events[0]["dur"].as_f64().unwrap(), 1e6);
    }

    #[test]
    fn chrome_trace_skips_unexecuted_ops() {
        let mut t = trace();
        t.op_records[1].start = -1.0;
        let json = t.to_chrome_trace(&[]);
        let v = Value::parse(&json).unwrap();
        let ops = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["cat"] == "op")
            .count();
        assert_eq!(ops, 1);
    }

    #[test]
    fn transfer_tids_do_not_collide_on_large_topologies() {
        // Seed encoding (src*1000 + dst) aliased (1, 2) with (0, 1002).
        let mut t = trace();
        t.transfers = vec![
            TransferRecord {
                src_op: OpId(0),
                dst_op: OpId(1),
                src_dev: DeviceId(1),
                dst_dev: DeviceId(2),
                bytes: 1,
                start: 0.0,
                end: 0.1,
            },
            TransferRecord {
                src_op: OpId(0),
                dst_op: OpId(1),
                src_dev: DeviceId(0),
                dst_dev: DeviceId(1002),
                bytes: 1,
                start: 0.0,
                end: 0.1,
            },
        ];
        let v = Value::parse(&t.to_chrome_trace(&[])).unwrap();
        let tids: Vec<f64> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["cat"] == "transfer")
            .map(|e| e["tid"].as_f64().unwrap())
            .collect();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1]);
    }

    #[test]
    fn full_trace_emits_perfetto_metadata_and_counters() {
        let topo = Topology::single_server(2);
        let mut t = trace();
        t.mem_timeline = vec![
            MemSample {
                t: 0.0,
                device: DeviceId(0),
                bytes: 10,
            },
            MemSample {
                t: 1.0,
                device: DeviceId(0),
                bytes: 4,
            },
        ];
        let v = Value::parse(&t.to_chrome_trace_full(&[], &topo)).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        let metas: Vec<_> = events.iter().filter(|e| e["ph"] == "M").collect();
        // 3 process names + one thread name per device (2 GPUs + host CPU)
        // + 1 channel thread name
        assert_eq!(metas.len(), 3 + topo.device_count() + 1);
        assert!(metas
            .iter()
            .any(|e| e["name"] == "process_name" && e["args"]["name"] == "compute"));
        let counters = events.iter().filter(|e| e["ph"] == "C").count();
        assert_eq!(counters, 2);
        // transfers collapse onto dense per-channel rows starting at 0
        let tmin = events
            .iter()
            .filter(|e| e["cat"] == "transfer")
            .map(|e| e["tid"].as_u64().unwrap())
            .min()
            .unwrap();
        assert_eq!(tmin, 0);
    }
}
