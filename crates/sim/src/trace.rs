//! Execution traces: the simulator's analogue of TensorFlow's
//! `RunMetadata` (Sec. 4 of the paper) — per-op execution records and
//! per-tensor transfer records, consumed by the adaptive cost models.

use fastt_cluster::DeviceId;
use fastt_graph::OpId;
use serde::{Deserialize, Serialize};

/// One op execution: where and when it ran.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// The executed op.
    pub op: OpId,
    /// Device it ran on.
    pub device: DeviceId,
    /// Start time (seconds from iteration start).
    pub start: f64,
    /// End time.
    pub end: f64,
}

impl OpRecord {
    /// Execution duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One inter-device tensor transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Producer op.
    pub src_op: OpId,
    /// Consumer op.
    pub dst_op: OpId,
    /// Source device.
    pub src_dev: DeviceId,
    /// Destination device.
    pub dst_dev: DeviceId,
    /// Bytes moved.
    pub bytes: u64,
    /// Time the transfer started (after queueing on its channel).
    pub start: f64,
    /// Time the data arrived.
    pub end: f64,
}

impl TransferRecord {
    /// Transfer duration (including channel latency, excluding queueing).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The result of simulating one training iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunTrace {
    /// Per-op execution records, indexed by `OpId`.
    pub op_records: Vec<OpRecord>,
    /// All inter-device transfers, in completion order.
    pub transfers: Vec<TransferRecord>,
    /// End-to-end iteration time, including the fixed framework overhead.
    pub makespan: f64,
    /// Per-device busy (compute) seconds.
    pub device_busy: Vec<f64>,
    /// Per-device peak memory (bytes).
    pub peak_mem: Vec<u64>,
}

impl RunTrace {
    /// The record for a specific op.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn op_record(&self, op: OpId) -> &OpRecord {
        &self.op_records[op.index()]
    }

    /// Sum of all op execution durations (the paper's Fig. 5
    /// "computation time").
    pub fn total_compute_time(&self) -> f64 {
        self.op_records.iter().map(|r| r.duration()).sum()
    }

    /// Sum of all transfer durations (the paper's Fig. 5 "memcpy time").
    pub fn total_memcpy_time(&self) -> f64 {
        self.transfers.iter().map(|t| t.duration()).sum()
    }

    /// Training speed for a given batch size, in samples per second —
    /// the paper's headline metric (Sec. 6.2).
    pub fn samples_per_sec(&self, batch: u64) -> f64 {
        batch as f64 / self.makespan
    }

    /// Largest peak memory across devices.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of the makespan each device spent computing.
    pub fn utilization(&self) -> Vec<f64> {
        self.device_busy
            .iter()
            .map(|b| {
                if self.makespan > 0.0 {
                    b / self.makespan
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Renders the trace in Chrome's trace-event JSON format (open in
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)): one row
    /// per device for op execution, one row per channel for transfers.
    ///
    /// `names` supplies the op labels (pass the graph's op names, indexed by
    /// `OpId`); missing entries fall back to the op id.
    pub fn to_chrome_trace(&self, names: &[String]) -> String {
        let mut events = Vec::new();
        let name_of = |op: OpId| -> String {
            names
                .get(op.index())
                .cloned()
                .unwrap_or_else(|| op.to_string())
        };
        for r in &self.op_records {
            if r.start < 0.0 {
                continue;
            }
            events.push(serde_json::json!({
                "name": name_of(r.op),
                "cat": "op",
                "ph": "X",
                "ts": r.start * 1e6,
                "dur": r.duration() * 1e6,
                "pid": 0,
                "tid": r.device.0,
            }));
        }
        for t in &self.transfers {
            events.push(serde_json::json!({
                "name": format!("{} -> {} ({} B)", name_of(t.src_op), name_of(t.dst_op), t.bytes),
                "cat": "transfer",
                "ph": "X",
                "ts": t.start * 1e6,
                "dur": t.duration() * 1e6,
                "pid": 1,
                "tid": t.src_dev.0 as u32 * 1000 + t.dst_dev.0 as u32,
            }));
        }
        serde_json::json!({ "traceEvents": events }).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> RunTrace {
        RunTrace {
            op_records: vec![
                OpRecord {
                    op: OpId(0),
                    device: DeviceId(0),
                    start: 0.0,
                    end: 1.0,
                },
                OpRecord {
                    op: OpId(1),
                    device: DeviceId(1),
                    start: 1.5,
                    end: 2.0,
                },
            ],
            transfers: vec![TransferRecord {
                src_op: OpId(0),
                dst_op: OpId(1),
                src_dev: DeviceId(0),
                dst_dev: DeviceId(1),
                bytes: 100,
                start: 1.0,
                end: 1.5,
            }],
            makespan: 2.0,
            device_busy: vec![1.0, 0.5],
            peak_mem: vec![10, 20],
        }
    }

    #[test]
    fn aggregates() {
        let t = trace();
        assert!((t.total_compute_time() - 1.5).abs() < 1e-12);
        assert!((t.total_memcpy_time() - 0.5).abs() < 1e-12);
        assert!((t.samples_per_sec(64) - 32.0).abs() < 1e-9);
        assert_eq!(t.max_peak_mem(), 20);
    }

    #[test]
    fn op_record_lookup() {
        let t = trace();
        assert_eq!(t.op_record(OpId(1)).device, DeviceId(1));
        assert!((t.op_record(OpId(0)).duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_fractions() {
        let t = trace();
        let u = t.utilization();
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let t = trace();
        let names = vec!["a".to_string(), "b".to_string()];
        let json = t.to_chrome_trace(&names);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3); // 2 ops + 1 transfer
        assert!(events.iter().any(|e| e["name"] == "a"));
        assert!(events.iter().any(|e| e["cat"] == "transfer"));
        // timestamps in microseconds
        assert_eq!(events[0]["dur"].as_f64().unwrap(), 1e6);
    }

    #[test]
    fn chrome_trace_skips_unexecuted_ops() {
        let mut t = trace();
        t.op_records[1].start = -1.0;
        let json = t.to_chrome_trace(&[]);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let ops = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["cat"] == "op")
            .count();
        assert_eq!(ops, 1);
    }
}
