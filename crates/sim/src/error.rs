//! Simulator errors.

use fastt_cluster::DeviceId;
use std::error::Error;
use std::fmt;

/// Error produced by a simulated execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A device ran out of memory — the simulated analogue of the
    /// out-of-memory failures the paper's Table 3 reports for data
    /// parallelism at large batch sizes.
    Oom {
        /// The device that overflowed.
        device: DeviceId,
        /// Bytes the allocation would have required in total.
        needed: u64,
        /// The device's capacity.
        capacity: u64,
        /// Name of the op whose allocation failed (empty for the initial
        /// resident-parameter placement).
        at_op: String,
    },
    /// The placement does not cover the graph or violates constraints.
    InvalidPlacement(String),
    /// Execution stalled before all ops ran (graph/placement inconsistency).
    Deadlock {
        /// Ops that did execute.
        executed: usize,
        /// Total ops in the graph.
        total: usize,
    },
    /// A device with work placed on it has crashed (injected via
    /// [`FaultSchedule`](crate::FaultSchedule)): the iteration cannot run
    /// until the plan stops using the device.
    DeviceCrash {
        /// The crashed device.
        device: DeviceId,
        /// The training iteration at which the crash was observed.
        iteration: u64,
    },
    /// A transient infrastructure failure (driver hiccup, profiling
    /// collector timeout) aborted this attempt; retrying the same
    /// iteration with a higher `SimConfig::attempt` may succeed.
    Transient {
        /// The device that hiccupped.
        device: DeviceId,
        /// The training iteration being attempted.
        iteration: u64,
        /// The attempt number that failed (0-based).
        attempt: u32,
    },
    /// A physical link stayed down past the transfer's retry budget (a
    /// flap that never came back): the plan must stop routing over it.
    LinkDown {
        /// Source device of the dead hop.
        src: DeviceId,
        /// Destination device of the dead hop.
        dst: DeviceId,
        /// The training iteration at which the link gave out.
        iteration: u64,
    },
    /// A host partition cut every route to a server before the transfer
    /// deadline: the plan must stop using the partitioned server.
    PartitionTimeout {
        /// The unreachable server.
        server: u16,
        /// The training iteration at which the partition was observed.
        iteration: u64,
    },
    /// No live route exists between two devices the plan requires to
    /// communicate (every candidate staging crosses a failed link).
    Unreachable {
        /// Source device of the impossible transfer.
        src: DeviceId,
        /// Destination device of the impossible transfer.
        dst: DeviceId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Oom {
                device,
                needed,
                capacity,
                at_op,
            } => write!(
                f,
                "out of memory on {device}: need {needed} bytes of {capacity} (at `{at_op}`)"
            ),
            SimError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
            SimError::Deadlock { executed, total } => {
                write!(f, "execution stalled after {executed}/{total} ops")
            }
            SimError::DeviceCrash { device, iteration } => {
                write!(f, "{device} crashed (iteration {iteration})")
            }
            SimError::Transient {
                device,
                iteration,
                attempt,
            } => write!(
                f,
                "transient failure on {device} (iteration {iteration}, attempt {attempt})"
            ),
            SimError::LinkDown {
                src,
                dst,
                iteration,
            } => write!(
                f,
                "link {src} -> {dst} down past retry budget (iteration {iteration})"
            ),
            SimError::PartitionTimeout { server, iteration } => {
                write!(
                    f,
                    "server {server} partitioned: transfer deadline exceeded (iteration {iteration})"
                )
            }
            SimError::Unreachable { src, dst } => {
                write!(f, "no live route from {src} to {dst}")
            }
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Whether this is an out-of-memory failure.
    pub fn is_oom(&self) -> bool {
        matches!(self, SimError::Oom { .. })
    }

    /// Whether this failure is transient — retrying the same attempt may
    /// succeed (as opposed to a crash or OOM, which need a new plan).
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Transient { .. })
    }

    /// The crashed device, when this is a [`SimError::DeviceCrash`].
    pub fn crashed_device(&self) -> Option<DeviceId> {
        match self {
            SimError::DeviceCrash { device, .. } => Some(*device),
            _ => None,
        }
    }

    /// The dead or unroutable link, when this is a network failure
    /// ([`SimError::LinkDown`] or [`SimError::Unreachable`]).
    pub fn dead_link(&self) -> Option<(DeviceId, DeviceId)> {
        match self {
            SimError::LinkDown { src, dst, .. } | SimError::Unreachable { src, dst } => {
                Some((*src, *dst))
            }
            _ => None,
        }
    }

    /// The partitioned server, when this is a [`SimError::PartitionTimeout`].
    pub fn partitioned_server(&self) -> Option<u16> {
        match self {
            SimError::PartitionTimeout { server, .. } => Some(*server),
            _ => None,
        }
    }
}
