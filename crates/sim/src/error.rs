//! Simulator errors.

use fastt_cluster::DeviceId;
use std::error::Error;
use std::fmt;

/// Error produced by a simulated execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A device ran out of memory — the simulated analogue of the
    /// out-of-memory failures the paper's Table 3 reports for data
    /// parallelism at large batch sizes.
    Oom {
        /// The device that overflowed.
        device: DeviceId,
        /// Bytes the allocation would have required in total.
        needed: u64,
        /// The device's capacity.
        capacity: u64,
        /// Name of the op whose allocation failed (empty for the initial
        /// resident-parameter placement).
        at_op: String,
    },
    /// The placement does not cover the graph or violates constraints.
    InvalidPlacement(String),
    /// Execution stalled before all ops ran (graph/placement inconsistency).
    Deadlock {
        /// Ops that did execute.
        executed: usize,
        /// Total ops in the graph.
        total: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Oom {
                device,
                needed,
                capacity,
                at_op,
            } => write!(
                f,
                "out of memory on {device}: need {needed} bytes of {capacity} (at `{at_op}`)"
            ),
            SimError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
            SimError::Deadlock { executed, total } => {
                write!(f, "execution stalled after {executed}/{total} ops")
            }
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Whether this is an out-of-memory failure.
    pub fn is_oom(&self) -> bool {
        matches!(self, SimError::Oom { .. })
    }
}
