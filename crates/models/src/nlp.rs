//! The four NMT/language-model benchmarks of the paper's evaluation
//! (Sec. 6.2): GNMT (4 layers), RNNLM, Transformer and BERT-large.
//!
//! Recurrent models are built as *unrolled* DAGs — the paper explicitly
//! optimizes "the DAG within each of its loops" and leaves dynamic control
//! flow as future work (Sec. 3, Sec. 8), so a fixed unroll length is the
//! faithful representation.

use crate::stack::{Cursor, LayerStack};
use fastt_graph::{Graph, OpId, OpKind, Operation, TensorShape};

/// Unroll length used for the recurrent benchmarks.
pub const SEQ_LEN: u64 = 20;
/// Sequence length for the attention benchmarks (the paper sets BERT's
/// maximal sequence length to 64, Sec. 6.3).
pub const ATTN_SEQ_LEN: u64 = 64;

/// One unrolled LSTM step: consumes the current cursor (`[batch, in]`) and,
/// optionally, the previous step's hidden state; shares weights across steps.
fn lstm_step(
    s: &mut LayerStack,
    name: &str,
    hidden: u64,
    weights: Option<OpId>,
    prev_state: Option<OpId>,
) -> (OpId, OpId) {
    let batch = s.shape().dim(0);
    let (cell, w) = s.lstm_cell(name, hidden, weights);
    if let Some(p) = prev_state {
        s.link_bytes(p, cell, batch * hidden * 4);
    }
    (cell, w)
}

/// RNNLM (Zaremba et al. "large"): 2-layer LSTM, hidden 1500, vocab 10k,
/// per-step softmax projection, unrolled [`SEQ_LEN`] steps.
pub fn rnnlm(batch: u64) -> Graph {
    const HIDDEN: u64 = 1500;
    const VOCAB: u64 = 10_000;
    let mut s = LayerStack::new("ids", [batch, SEQ_LEN]);
    s.embedding("embedding", VOCAB, HIDDEN);
    let emb = s.mark();

    let mut weights: [Option<OpId>; 2] = [None, None];
    let mut states: [Option<OpId>; 2] = [None, None];
    let proj_w = s.variable("proj/weights", [HIDDEN, VOCAB]);
    let mut last_losses: Vec<Cursor> = Vec::new();
    for t in 0..SEQ_LEN {
        s.goto(&emb);
        s.slice(&format!("slice{t}"), [batch, HIDDEN]);
        for (l, _) in (0..2).enumerate() {
            let (cell, w) = lstm_step(&mut s, &format!("l{l}_t{t}"), HIDDEN, weights[l], states[l]);
            weights[l] = Some(w);
            states[l] = Some(cell);
        }
        // per-step vocabulary projection
        let proj = s.add_with_inputs(
            Operation::new(format!("proj_t{t}"), OpKind::MatMul, [batch, VOCAB])
                .with_flops(2 * batch * HIDDEN * VOCAB),
            &[states[1].unwrap(), proj_w],
        );
        s.set_cursor(proj, [batch, VOCAB]);
        s.softmax(&format!("softmax_t{t}"));
        last_losses.push(s.mark());
    }
    finish_joint_loss(s, &last_losses)
}

/// GNMT with 4 encoder and 4 decoder layers (first encoder layer
/// bidirectional), hidden 1024, vocab 32k, per-step attention and
/// vocabulary projection, unrolled [`SEQ_LEN`] steps.
pub fn gnmt4(batch: u64) -> Graph {
    const HIDDEN: u64 = 1024;
    const VOCAB: u64 = 32_000;
    let mut s = LayerStack::new("src_ids", [batch, SEQ_LEN]);
    s.embedding("enc_embedding", VOCAB, HIDDEN);
    let enc_emb = s.mark();

    // Encoder: layer 0 is bidirectional (fwd + bwd cells), layers 1–3
    // unidirectional. Weight shared across time per (layer, direction).
    let mut enc_w: Vec<Option<OpId>> = vec![None; 5];
    let mut enc_state: Vec<Option<OpId>> = vec![None; 5];
    let mut enc_top: Vec<OpId> = Vec::new();
    for t in 0..SEQ_LEN {
        s.goto(&enc_emb);
        s.slice(&format!("enc_slice{t}"), [batch, HIDDEN]);
        let input = s.mark();
        // bidirectional layer 0
        let (fw, wf) = lstm_step(
            &mut s,
            &format!("enc_l0f_t{t}"),
            HIDDEN,
            enc_w[0],
            enc_state[0],
        );
        enc_w[0] = Some(wf);
        enc_state[0] = Some(fw);
        s.goto(&input);
        let (bw, wb) = lstm_step(
            &mut s,
            &format!("enc_l0b_t{t}"),
            HIDDEN,
            enc_w[1],
            enc_state[1],
        );
        enc_w[1] = Some(wb);
        enc_state[1] = Some(bw);
        // combine directions
        let comb = s.add_with_inputs(
            Operation::new(format!("enc_comb_t{t}"), OpKind::Add, [batch, HIDDEN])
                .with_flops(batch * HIDDEN),
            &[fw, bw],
        );
        s.set_cursor(comb, [batch, HIDDEN]);
        for l in 1..4usize {
            let (cell, w) = lstm_step(
                &mut s,
                &format!("enc_l{l}_t{t}"),
                HIDDEN,
                enc_w[l + 1],
                enc_state[l + 1],
            );
            enc_w[l + 1] = Some(w);
            enc_state[l + 1] = Some(cell);
        }
        enc_top.push(enc_state[4].unwrap());
    }

    // Decoder with additive attention over the encoder outputs.
    let mut t_in = {
        let dec_ids = s.add_detached(Operation::new("tgt_ids", OpKind::Input, [batch, SEQ_LEN]));
        let table = s.variable("dec_embedding/table", [VOCAB, HIDDEN]);
        let emb = s.add_with_inputs(
            Operation::new("dec_embedding", OpKind::Embedding, [batch, SEQ_LEN, HIDDEN])
                .with_flops(batch * SEQ_LEN * HIDDEN),
            &[dec_ids, table],
        );
        s.set_cursor(emb, [batch, SEQ_LEN, HIDDEN]);
        s.mark()
    };
    let mut dec_w: Vec<Option<OpId>> = vec![None; 4];
    let mut dec_state: Vec<Option<OpId>> = vec![None; 4];
    let attn_w = s.variable("attention/weights", [2 * HIDDEN, HIDDEN]);
    let proj_w = s.variable("proj/weights", [HIDDEN, VOCAB]);
    let mut outputs: Vec<Cursor> = Vec::new();
    for t in 0..SEQ_LEN {
        s.goto(&t_in);
        s.slice(&format!("dec_slice{t}"), [batch, HIDDEN]);
        for l in 0..4usize {
            let (cell, w) = lstm_step(
                &mut s,
                &format!("dec_l{l}_t{t}"),
                HIDDEN,
                dec_w[l],
                dec_state[l],
            );
            dec_w[l] = Some(w);
            dec_state[l] = Some(cell);
        }
        // attention: scores against all encoder outputs + context blend
        let attn = s.add_detached(
            Operation::new(format!("attn_t{t}"), OpKind::Attention, [batch, HIDDEN])
                .with_flops(4 * batch * SEQ_LEN * HIDDEN),
        );
        s.link_bytes(dec_state[3].unwrap(), attn, batch * HIDDEN * 4);
        for &e in &enc_top {
            s.link_bytes(e, attn, batch * HIDDEN * 4);
        }
        s.link_bytes(attn_w, attn, 2 * HIDDEN * HIDDEN * 4);
        let proj = s.add_with_inputs(
            Operation::new(format!("proj_t{t}"), OpKind::MatMul, [batch, VOCAB])
                .with_flops(2 * batch * HIDDEN * VOCAB),
            &[attn, proj_w],
        );
        s.set_cursor(proj, [batch, VOCAB]);
        s.softmax(&format!("softmax_t{t}"));
        outputs.push(s.mark());
    }
    let _ = &mut t_in;
    finish_joint_loss(s, &outputs)
}

/// Multi-head self/cross attention block with residual + layer norm.
/// `source` provides keys and values (`None` = self-attention).
fn mha_block(s: &mut LayerStack, p: &str, heads: u64, source: Option<&Cursor>) {
    let input = s.mark();
    let (n, seq, d) = (input.shape.dim(0), input.shape.dim(1), input.shape.dim(2));
    let dh = d / heads;
    s.fc(&format!("{p}/q"), d);
    let q = s.mark();
    let kv_src = source.unwrap_or(&input).clone();
    s.goto(&kv_src).fc(&format!("{p}/k"), d);
    let k = s.mark();
    s.goto(&kv_src).fc(&format!("{p}/v"), d);
    let v = s.mark();

    let slice_bytes = n * seq * dh * 4;
    let mut head_ops = Vec::with_capacity(heads as usize);
    for h in 0..heads {
        let at = s.add_detached(
            Operation::new(format!("{p}/head{h}"), OpKind::Attention, [n, seq, dh])
                .with_flops(4 * n * seq * seq * dh + 3 * n * seq * seq),
        );
        s.link_bytes(q.op, at, slice_bytes);
        s.link_bytes(k.op, at, slice_bytes);
        s.link_bytes(v.op, at, slice_bytes);
        head_ops.push(at);
    }
    let cat = s.add_detached(
        Operation::new(format!("{p}/heads_concat"), OpKind::Concat, [n, seq, d])
            .with_flops(n * seq * d),
    );
    for &h in &head_ops {
        s.link_bytes(h, cat, slice_bytes);
    }
    s.set_cursor(cat, [n, seq, d]);
    s.fc(&format!("{p}/out"), d);
    s.add_residual(&format!("{p}/res"), &input);
    s.layer_norm(&format!("{p}/ln"));
}

/// Position-wise feed-forward block with residual + layer norm. The
/// activation kind matters for memory: the original Transformer uses ReLU,
/// BERT uses (TF-1.x-unfused) GeLU.
fn ffn_block(s: &mut LayerStack, p: &str, d_ff: u64, act: OpKind) {
    let input = s.mark();
    let d = input.shape.dim(2);
    s.fc(&format!("{p}/ff1"), d_ff)
        .activation(&format!("{p}/ff_act"), act)
        .fc(&format!("{p}/ff2"), d);
    s.add_residual(&format!("{p}/res"), &input);
    s.layer_norm(&format!("{p}/ln"));
}

/// Transformer base (Vaswani et al.): 6 encoder + 6 decoder layers,
/// d_model 512, 8 heads, d_ff 2048, vocab 32k. `batch` counts *tokens*
/// (the paper trains with a global batch of 4096); sequences have
/// [`ATTN_SEQ_LEN`] tokens each.
///
/// # Panics
///
/// Panics if `batch < ATTN_SEQ_LEN` (need at least one sequence).
pub fn transformer(batch: u64) -> Graph {
    const D: u64 = 512;
    const HEADS: u64 = 8;
    const FF: u64 = 2048;
    const VOCAB: u64 = 32_000;
    let seqs = batch / ATTN_SEQ_LEN;
    assert!(
        seqs > 0,
        "transformer batch must be at least {ATTN_SEQ_LEN} tokens"
    );

    let mut s = LayerStack::new("src_ids", [seqs, ATTN_SEQ_LEN]);
    s.embedding("enc_embedding", VOCAB, D);
    for l in 0..6 {
        mha_block(&mut s, &format!("enc{l}/self"), HEADS, None);
        ffn_block(&mut s, &format!("enc{l}"), FF, OpKind::Relu);
    }
    let memory = s.mark();

    let dec_ids = s.add_detached(Operation::new(
        "tgt_ids",
        OpKind::Input,
        [seqs, ATTN_SEQ_LEN],
    ));
    let table = s.variable("dec_embedding/table", [VOCAB, D]);
    let emb = s.add_with_inputs(
        Operation::new("dec_embedding", OpKind::Embedding, [seqs, ATTN_SEQ_LEN, D])
            .with_flops(seqs * ATTN_SEQ_LEN * D),
        &[dec_ids, table],
    );
    s.set_cursor(emb, [seqs, ATTN_SEQ_LEN, D]);
    for l in 0..6 {
        mha_block(&mut s, &format!("dec{l}/self"), HEADS, None);
        mha_block(&mut s, &format!("dec{l}/cross"), HEADS, Some(&memory));
        ffn_block(&mut s, &format!("dec{l}"), FF, OpKind::Relu);
    }
    s.fc("logits", VOCAB).softmax("prob");
    s.finish_with_loss("loss")
}

/// A Transformer encoder stack of configurable depth, for scaling studies:
/// `layers` encoder layers at d_model 512, 8 heads, d_ff 2048, vocab 8k.
/// The perf benchmarks use this to grow the op count toward the 100k-op
/// regime the ROADMAP targets (each encoder layer contributes a few dozen
/// forward ops; the training graph roughly triples that), keeping every
/// other structural property of [`transformer`] — attention fan-out,
/// residual joins, shared embedding — intact. `batch` counts tokens, as in
/// [`transformer`].
///
/// # Panics
///
/// Panics if `batch < ATTN_SEQ_LEN` or `layers == 0`.
pub fn stacked_transformer(batch: u64, layers: u32) -> Graph {
    const D: u64 = 512;
    const HEADS: u64 = 8;
    const FF: u64 = 2048;
    const VOCAB: u64 = 8_000;
    assert!(layers > 0, "stacked transformer needs at least one layer");
    let seqs = batch / ATTN_SEQ_LEN;
    assert!(
        seqs > 0,
        "stacked transformer batch must be at least {ATTN_SEQ_LEN} tokens"
    );
    let mut s = LayerStack::new("ids", [seqs, ATTN_SEQ_LEN]);
    s.embedding("embedding", VOCAB, D);
    for l in 0..layers {
        mha_block(&mut s, &format!("layer{l}/self"), HEADS, None);
        ffn_block(&mut s, &format!("layer{l}"), FF, OpKind::Relu);
    }
    s.fc("logits", VOCAB).softmax("prob");
    s.finish_with_loss("loss")
}

/// BERT-large: 24 encoder layers, d_model 1024, 16 heads, d_ff 4096,
/// vocab 30k, sequence length [`ATTN_SEQ_LEN`] (the paper's setting),
/// with a masked-LM head. `batch` counts sequences (the paper's Table 1
/// uses a global batch of 16).
pub fn bert_large(batch: u64) -> Graph {
    const D: u64 = 1024;
    const HEADS: u64 = 16;
    const FF: u64 = 4096;
    const VOCAB: u64 = 30_000;
    let mut s = LayerStack::new("ids", [batch, ATTN_SEQ_LEN]);
    s.embedding("embedding", VOCAB, D);
    s.layer_norm("embedding/ln");
    for l in 0..24 {
        mha_block(&mut s, &format!("layer{l}/attn"), HEADS, None);
        ffn_block(&mut s, &format!("layer{l}"), FF, OpKind::Gelu);
    }
    s.fc("mlm/transform", D).layer_norm("mlm/ln");
    s.fc("mlm/logits", VOCAB).softmax("mlm/prob");
    s.finish_with_loss("loss")
}

/// Joins per-step outputs into a single loss sink.
fn finish_joint_loss(mut s: LayerStack, outputs: &[Cursor]) -> Graph {
    let loss = s.add_detached(Operation::new("loss", OpKind::Loss, TensorShape::scalar()));
    let per_step = outputs
        .first()
        .map(|c| c.shape.dim(0) * 4) // one scalar per sample
        .unwrap_or(4);
    for o in outputs {
        s.link_bytes(o.op, loss, per_step);
    }
    s.into_graph()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::build_training_graph;

    fn params(g: &Graph) -> u64 {
        g.total_param_bytes() / 4
    }

    #[test]
    fn rnnlm_parameter_count() {
        let g = rnnlm(64);
        g.validate().unwrap();
        let p = params(&g);
        // Zaremba-large: ~66M (embedding 15M + 2x LSTM 18M + proj 15M)
        assert!(p > 50_000_000 && p < 80_000_000, "rnnlm params = {p}");
    }

    #[test]
    fn rnnlm_has_recurrent_structure() {
        let g = rnnlm(8);
        // cell at t=1 must depend on cell at t=0
        let c0 = g.by_name("l0_t0").unwrap();
        let c1 = g.by_name("l0_t1").unwrap();
        assert!(g.preds(c1).any(|p| p == c0));
        // weights shared: exactly one variable per layer
        let vars = g
            .iter_ops()
            .filter(|(_, o)| o.name.starts_with("l0_") && o.kind == OpKind::Variable)
            .count();
        assert_eq!(vars, 1, "layer-0 weights shared across all time steps");
        assert!(g.by_name("l0_t0/weights").is_some());
        assert!(g.by_name("l0_t1/weights").is_none());
    }

    #[test]
    fn gnmt_parameter_count() {
        let g = gnmt4(128);
        g.validate().unwrap();
        let p = params(&g);
        // two 32k x 1024 embeddings + 9 LSTMs + attention + 1024x32k proj ≈ 170M
        assert!(p > 120_000_000 && p < 220_000_000, "gnmt params = {p}");
    }

    #[test]
    fn gnmt_attention_reads_all_encoder_steps() {
        let g = gnmt4(8);
        let attn = g.by_name("attn_t0").unwrap();
        // preds: decoder state + SEQ_LEN encoder outputs + weights
        assert_eq!(g.preds(attn).count() as u64, 1 + SEQ_LEN + 1);
    }

    #[test]
    fn stacked_transformer_depth_scales_op_count() {
        let g4 = stacked_transformer(64, 4);
        let g16 = stacked_transformer(64, 16);
        g4.validate().unwrap();
        g16.validate().unwrap();
        let (n4, n16) = (g4.op_count(), g16.op_count());
        assert!(
            n16 > 3 * n4,
            "op count must scale with depth: {n4} vs {n16}"
        );
        // and the training graph stays buildable
        let t = build_training_graph(&g4).unwrap();
        assert!(t.op_count() > n4);
    }

    #[test]
    fn transformer_parameter_count() {
        let g = transformer(4096);
        g.validate().unwrap();
        let p = params(&g);
        // Transformer base ≈ 65M + our untied output projection (16M)
        assert!(
            p > 50_000_000 && p < 120_000_000,
            "transformer params = {p}"
        );
    }

    #[test]
    fn transformer_head_count() {
        let g = transformer(4096);
        let heads = g
            .iter_ops()
            .filter(|(_, o)| o.kind == OpKind::Attention)
            .count();
        // 6 enc self + 6 dec self + 6 dec cross = 18 blocks x 8 heads
        assert_eq!(heads, 18 * 8);
    }

    #[test]
    fn bert_parameter_count() {
        let g = bert_large(16);
        g.validate().unwrap();
        let p = params(&g);
        // published BERT-large: ~340M
        assert!(p > 280_000_000 && p < 420_000_000, "bert params = {p}");
    }

    #[test]
    fn bert_layer_count() {
        let g = bert_large(16);
        let lns = g
            .iter_ops()
            .filter(|(_, o)| o.name.ends_with("/ln") && o.name.starts_with("layer"))
            .count();
        assert_eq!(lns, 48); // 2 per layer x 24 layers
    }

    #[test]
    fn all_nlp_models_produce_training_graphs() {
        for (name, g) in [
            ("rnnlm", rnnlm(8)),
            ("gnmt", gnmt4(8)),
            ("transformer", transformer(128)),
            ("bert", bert_large(2)),
        ] {
            let t = build_training_graph(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
            t.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn transformer_rejects_tiny_batches() {
        transformer(8);
    }
}
