//! The five CNN benchmark models of the paper's evaluation (Sec. 6.2):
//! LeNet, AlexNet, VGG-19, Inception-v3 and ResNet-200.
//!
//! Builders return *forward* graphs; callers derive training graphs with
//! [`fastt_graph::build_training_graph`]. Layer dimensions follow the
//! published architectures so parameter sizes and flop distributions match
//! the originals (e.g. VGG-19's `fc6` holds a ~411 MB weight, the op the
//! paper highlights as "not split, to avoid overhead of broadcasting
//! parameters").

use crate::stack::LayerStack;
use fastt_graph::Graph;

/// LeNet-5 on 28×28×1 MNIST images.
pub fn lenet(batch: u64) -> Graph {
    let mut s = LayerStack::new("images", [batch, 28, 28, 1]);
    s.conv("conv1", 6, 5, 1)
        .relu("relu1")
        .pool("pool1", 2, 2)
        .conv("conv2", 16, 5, 1)
        .relu("relu2")
        .pool("pool2", 2, 2);
    s.flatten();
    s.fc("fc1", 120).relu("relu3");
    s.fc("fc2", 84).relu("relu4");
    s.fc("fc3", 10).softmax("prob");
    s.finish_with_loss("loss")
}

/// AlexNet on 224×224×3 ImageNet images.
pub fn alexnet(batch: u64) -> Graph {
    let mut s = LayerStack::new("images", [batch, 224, 224, 3]);
    s.conv("conv1", 96, 11, 4)
        .relu("relu1")
        .pool("pool1", 3, 2)
        .conv("conv2", 256, 5, 1)
        .relu("relu2")
        .pool("pool2", 3, 2)
        .conv("conv3", 384, 3, 1)
        .relu("relu3")
        .conv("conv4", 384, 3, 1)
        .relu("relu4")
        .conv("conv5", 256, 3, 1)
        .relu("relu5")
        .pool("pool5", 3, 2);
    s.flatten();
    s.fc("fc6", 4096).relu("relu6");
    s.fc("fc7", 4096).relu("relu7");
    s.fc("fc8", 1000).softmax("prob");
    s.finish_with_loss("loss")
}

/// VGG-19 (configuration E of Simonyan & Zisserman) on 224×224×3 images.
///
/// Layer names match the paper's Table 5 (`conv1_1`, `conv1_2`, …, `fc6`).
pub fn vgg19(batch: u64) -> Graph {
    let mut s = LayerStack::new("images", [batch, 224, 224, 3]);
    let blocks: &[(u64, u64, &[&str])] = &[
        (64, 2, &["conv1_1", "conv1_2"]),
        (128, 2, &["conv2_1", "conv2_2"]),
        (256, 4, &["conv3_1", "conv3_2", "conv3_3", "conv3_4"]),
        (512, 4, &["conv4_1", "conv4_2", "conv4_3", "conv4_4"]),
        (512, 4, &["conv5_1", "conv5_2", "conv5_3", "conv5_4"]),
    ];
    for (bi, (ch, _, names)) in blocks.iter().enumerate() {
        for name in names.iter() {
            s.conv(name, *ch, 3, 1)
                .relu(&format!("relu{}", name.trim_start_matches("conv")));
        }
        s.pool(&format!("pool{}", bi + 1), 2, 2);
    }
    s.flatten();
    s.fc("fc6", 4096).relu("relu6");
    s.fc("fc7", 4096).relu("relu7");
    s.fc("fc8", 1000).softmax("prob");
    s.finish_with_loss("loss")
}

/// One Inception-v3 "A" style block: four parallel branches concatenated
/// along the channel dimension.
fn inception_a(s: &mut LayerStack, p: &str, pool_proj: u64) {
    let root = s.mark();
    s.conv(&format!("{p}/b1x1"), 64, 1, 1)
        .relu(&format!("{p}/b1x1/relu"));
    let b1 = s.mark();
    s.goto(&root)
        .conv(&format!("{p}/b5x5_reduce"), 48, 1, 1)
        .conv(&format!("{p}/b5x5"), 64, 5, 1)
        .relu(&format!("{p}/b5x5/relu"));
    let b2 = s.mark();
    s.goto(&root)
        .conv(&format!("{p}/b3x3dbl_reduce"), 64, 1, 1)
        .conv(&format!("{p}/b3x3dbl_1"), 96, 3, 1)
        .conv(&format!("{p}/b3x3dbl_2"), 96, 3, 1)
        .relu(&format!("{p}/b3x3dbl/relu"));
    let b3 = s.mark();
    s.goto(&root)
        .pool(&format!("{p}/pool"), 3, 1)
        .conv(&format!("{p}/pool_proj"), pool_proj, 1, 1);
    s.concat(&format!("{p}/concat"), &[b1, b2, b3]);
}

/// One Inception-v3 "B" style block with factorized 7×7 convolutions.
fn inception_b(s: &mut LayerStack, p: &str, mid: u64) {
    let root = s.mark();
    s.conv(&format!("{p}/b1x1"), 192, 1, 1)
        .relu(&format!("{p}/b1x1/relu"));
    let b1 = s.mark();
    s.goto(&root)
        .conv(&format!("{p}/b7x7_reduce"), mid, 1, 1)
        .conv_rect(&format!("{p}/b1x7"), mid, 1, 7, 1)
        .conv_rect(&format!("{p}/b7x1"), 192, 7, 1, 1);
    let b2 = s.mark();
    s.goto(&root)
        .conv(&format!("{p}/b7x7dbl_reduce"), mid, 1, 1)
        .conv_rect(&format!("{p}/b7x7dbl_1"), mid, 7, 1, 1)
        .conv_rect(&format!("{p}/b7x7dbl_2"), mid, 1, 7, 1)
        .conv_rect(&format!("{p}/b7x7dbl_3"), mid, 7, 1, 1)
        .conv_rect(&format!("{p}/b7x7dbl_4"), 192, 1, 7, 1);
    let b3 = s.mark();
    s.goto(&root)
        .pool(&format!("{p}/pool"), 3, 1)
        .conv(&format!("{p}/pool_proj"), 192, 1, 1);
    s.concat(&format!("{p}/concat"), &[b1, b2, b3]);
}

/// One Inception-v3 "C" style block (8×8 grid, wide branches).
fn inception_c(s: &mut LayerStack, p: &str) {
    let root = s.mark();
    s.conv(&format!("{p}/b1x1"), 320, 1, 1)
        .relu(&format!("{p}/b1x1/relu"));
    let b1 = s.mark();
    s.goto(&root).conv(&format!("{p}/b3x3_reduce"), 384, 1, 1);
    let reduce = s.mark();
    s.conv_rect(&format!("{p}/b1x3"), 384, 1, 3, 1);
    let b2a = s.mark();
    s.goto(&reduce)
        .conv_rect(&format!("{p}/b3x1"), 384, 3, 1, 1);
    let b2b = s.mark();
    s.goto(&root)
        .conv(&format!("{p}/b3x3dbl_reduce"), 448, 1, 1)
        .conv(&format!("{p}/b3x3dbl_1"), 384, 3, 1);
    let dbl = s.mark();
    s.conv_rect(&format!("{p}/b3x3dbl_1x3"), 384, 1, 3, 1);
    let b3a = s.mark();
    s.goto(&dbl)
        .conv_rect(&format!("{p}/b3x3dbl_3x1"), 384, 3, 1, 1);
    let b3b = s.mark();
    s.goto(&root)
        .pool(&format!("{p}/pool"), 3, 1)
        .conv(&format!("{p}/pool_proj"), 192, 1, 1);
    s.concat(&format!("{p}/concat"), &[b1, b2a, b2b, b3a, b3b]);
}

/// Grid-size reduction block (stride-2 branches plus pooling).
fn inception_reduce(s: &mut LayerStack, p: &str, ch_a: u64, ch_b: u64) {
    let root = s.mark();
    s.conv(&format!("{p}/b3x3"), ch_a, 3, 2);
    let b1 = s.mark();
    s.goto(&root)
        .conv(&format!("{p}/b3x3dbl_reduce"), ch_b, 1, 1)
        .conv(&format!("{p}/b3x3dbl_1"), ch_b, 3, 1)
        .conv(&format!("{p}/b3x3dbl_2"), ch_b, 3, 2);
    let b2 = s.mark();
    s.goto(&root).pool(&format!("{p}/pool"), 3, 2);
    s.concat(&format!("{p}/concat"), &[b1, b2]);
}

/// Inception-v3 on 299×299×3 images (stem + 3 A blocks + 4 B blocks +
/// 2 C blocks with the two grid reductions, following Szegedy et al.).
pub fn inception_v3(batch: u64) -> Graph {
    let mut s = LayerStack::new("images", [batch, 299, 299, 3]);
    s.conv("conv0", 32, 3, 2)
        .conv("conv1", 32, 3, 1)
        .conv("conv2", 64, 3, 1)
        .pool("pool1", 3, 2)
        .conv("conv3", 80, 1, 1)
        .conv("conv4", 192, 3, 1)
        .pool("pool2", 3, 2);
    inception_a(&mut s, "mixed0", 32);
    inception_a(&mut s, "mixed1", 64);
    inception_a(&mut s, "mixed2", 64);
    inception_reduce(&mut s, "mixed3", 384, 96);
    inception_b(&mut s, "mixed4", 128);
    inception_b(&mut s, "mixed5", 160);
    inception_b(&mut s, "mixed6", 160);
    inception_b(&mut s, "mixed7", 192);
    inception_reduce(&mut s, "mixed8", 320, 192);
    inception_c(&mut s, "mixed9");
    inception_c(&mut s, "mixed10");
    s.global_pool("avg_pool");
    s.fc("logits", 1000).softmax("prob");
    s.finish_with_loss("loss")
}

/// One pre-activation bottleneck residual block.
fn bottleneck(s: &mut LayerStack, p: &str, mid: u64, out: u64, stride: u64) {
    let input = s.mark();
    let needs_proj = input.shape.dim(3) != out || stride != 1;
    s.batch_norm(&format!("{p}/bn0"))
        .relu(&format!("{p}/relu0"));
    let preact = s.mark();
    s.conv(&format!("{p}/conv1"), mid, 1, stride)
        .batch_norm(&format!("{p}/bn1"))
        .relu(&format!("{p}/relu1"))
        .conv(&format!("{p}/conv2"), mid, 3, 1)
        .batch_norm(&format!("{p}/bn2"))
        .relu(&format!("{p}/relu2"))
        .conv(&format!("{p}/conv3"), out, 1, 1);
    let main = s.mark();
    let shortcut = if needs_proj {
        s.goto(&preact)
            .conv(&format!("{p}/shortcut"), out, 1, stride);
        s.mark()
    } else {
        input
    };
    s.goto(&main);
    s.add_residual(&format!("{p}/add"), &shortcut);
}

/// ResNet-200 v2 (pre-activation, bottleneck depths `[3, 24, 36, 3]`)
/// on 224×224×3 images.
pub fn resnet200(batch: u64) -> Graph {
    let mut s = LayerStack::new("images", [batch, 224, 224, 3]);
    s.conv("conv1", 64, 7, 2).pool("pool1", 3, 2);
    let stages: &[(u64, u64, u64, &str)] = &[
        (64, 256, 3, "stage1"),
        (128, 512, 24, "stage2"),
        (256, 1024, 36, "stage3"),
        (512, 2048, 3, "stage4"),
    ];
    for (si, (mid, out, blocks, name)) in stages.iter().enumerate() {
        for b in 0..*blocks {
            let stride = if b == 0 && si > 0 { 2 } else { 1 };
            bottleneck(&mut s, &format!("{name}/block{b}"), *mid, *out, stride);
        }
    }
    s.batch_norm("postnorm")
        .relu("postrelu")
        .global_pool("avg_pool");
    s.fc("logits", 1000).softmax("prob");
    s.finish_with_loss("loss")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_graph::build_training_graph;

    fn param_count(g: &Graph) -> u64 {
        g.total_param_bytes() / 4
    }

    #[test]
    fn lenet_is_small() {
        let g = lenet(256);
        g.validate().unwrap();
        let p = param_count(&g);
        // classic LeNet-5 has ~60k parameters; same-padding gives us a bit
        // more in fc1 but the same order of magnitude
        assert!(p > 30_000 && p < 300_000, "lenet params = {p}");
    }

    #[test]
    fn alexnet_parameter_count() {
        let g = alexnet(256);
        g.validate().unwrap();
        let p = param_count(&g);
        // published AlexNet is ~61M; same-padding fc6 gives slightly more
        assert!(p > 40_000_000 && p < 90_000_000, "alexnet params = {p}");
    }

    #[test]
    fn vgg19_parameter_count() {
        let g = vgg19(64);
        g.validate().unwrap();
        let p = param_count(&g);
        // published VGG-19: 143.7M parameters
        assert!(p > 130_000_000 && p < 160_000_000, "vgg19 params = {p}");
    }

    #[test]
    fn vgg19_fc6_is_huge() {
        let g = vgg19(64);
        let w = g.op_ref(g.by_name("fc6/weights").unwrap());
        // 25088 x 4096 = 102.8M parameters (the paper's Table 5 `Fc6` row)
        assert_eq!(w.param_bytes / 4, 25088 * 4096);
    }

    #[test]
    fn inception_parameter_count() {
        let g = inception_v3(64);
        g.validate().unwrap();
        let p = param_count(&g);
        // published Inception-v3: ~23.8M
        assert!(p > 15_000_000 && p < 40_000_000, "inception params = {p}");
    }

    #[test]
    fn resnet200_depth_and_params() {
        let g = resnet200(32);
        g.validate().unwrap();
        let convs = g
            .iter_ops()
            .filter(|(_, o)| o.kind == fastt_graph::OpKind::Conv2D)
            .count();
        // 66 blocks x 3 convs + shortcuts + stem ≈ 200+
        assert!(convs > 190, "resnet200 convs = {convs}");
        let p = param_count(&g);
        // published ResNet-200 v2: ~64.7M
        assert!(p > 50_000_000 && p < 80_000_000, "resnet200 params = {p}");
    }

    #[test]
    fn all_cnns_produce_training_graphs() {
        for (name, g) in [
            ("lenet", lenet(8)),
            ("alexnet", alexnet(8)),
            ("vgg19", vgg19(8)),
            ("inception", inception_v3(8)),
            ("resnet200", resnet200(8)),
        ] {
            let t = build_training_graph(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
            t.validate().unwrap();
            assert!(
                t.op_count() > g.op_count(),
                "{name} training graph too small"
            );
        }
    }

    #[test]
    fn vgg_conv_flops_dominated_by_early_layers() {
        let g = vgg19(64);
        let f = |n: &str| g.op_ref(g.by_name(n).unwrap()).flops;
        // conv1_2 (64ch at 224x224) is one of the heaviest ops — the paper's
        // Table 5 shows it as a split candidate with 11ms runtime
        assert!(f("conv1_2") > f("conv1_1") * 10);
        assert!(f("conv1_2") > f("fc8"));
    }

    #[test]
    fn batch_scales_flops_not_params() {
        let small = vgg19(8);
        let large = vgg19(64);
        assert_eq!(small.total_param_bytes(), large.total_param_bytes());
        assert!(large.total_flops() > 7 * small.total_flops());
    }
}
