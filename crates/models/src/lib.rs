//! # fastt-models
//!
//! Benchmark model graph builders for the FastT reproduction: the five CNNs
//! and four NMT/attention models of the paper's evaluation (Sec. 6.2), plus
//! the [`LayerStack`] builder they are written with.
//!
//! All builders return *forward* graphs; pass them through
//! [`fastt_graph::build_training_graph`] (or use [`Model::training_graph`])
//! to obtain the per-iteration training DAG that FastT schedules.
//!
//! # Examples
//!
//! ```
//! use fastt_models::Model;
//!
//! let g = Model::Vgg19.training_graph(8);
//! assert!(g.op_count() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnn;
mod nlp;
mod stack;

pub use cnn::{alexnet, inception_v3, lenet, resnet200, vgg19};
pub use nlp::{bert_large, gnmt4, rnnlm, stacked_transformer, transformer, ATTN_SEQ_LEN, SEQ_LEN};
pub use stack::{Cursor, LayerStack};

use fastt_graph::{build_training_graph, Graph};
use std::fmt;

/// The nine benchmark models of the paper's evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Inception-v3 CNN.
    InceptionV3,
    /// VGG-19 CNN.
    Vgg19,
    /// ResNet-200 v2 CNN.
    ResNet200,
    /// LeNet-5 CNN.
    LeNet,
    /// AlexNet CNN.
    AlexNet,
    /// GNMT with 4 encoder/decoder layers.
    Gnmt4,
    /// 2-layer LSTM language model.
    Rnnlm,
    /// Transformer base.
    Transformer,
    /// BERT-large.
    BertLarge,
}

impl Model {
    /// All nine models, in the paper's Table 1 row order.
    pub fn all() -> [Model; 9] {
        [
            Model::InceptionV3,
            Model::Vgg19,
            Model::ResNet200,
            Model::LeNet,
            Model::AlexNet,
            Model::Gnmt4,
            Model::Rnnlm,
            Model::Transformer,
            Model::BertLarge,
        ]
    }

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Model::InceptionV3 => "Inception_v3",
            Model::Vgg19 => "VGG-19",
            Model::ResNet200 => "ResNet200",
            Model::LeNet => "LeNet",
            Model::AlexNet => "AlexNet",
            Model::Gnmt4 => "GNMT(4 layers)",
            Model::Rnnlm => "RNNLM",
            Model::Transformer => "Transformer",
            Model::BertLarge => "Bert-large",
        }
    }

    /// The batch size of the paper's Table 1 / Table 2 (global batch under
    /// strong scaling, per-GPU batch under weak scaling).
    pub fn paper_batch(self) -> u64 {
        match self {
            Model::InceptionV3 => 64,
            Model::Vgg19 => 64,
            Model::ResNet200 => 32,
            Model::LeNet => 256,
            Model::AlexNet => 256,
            Model::Gnmt4 => 128,
            Model::Rnnlm => 64,
            Model::Transformer => 4096,
            Model::BertLarge => 16,
        }
    }

    /// The smallest batch this model can be built with (Transformer batches
    /// count tokens and need at least one [`ATTN_SEQ_LEN`]-token sequence).
    pub fn min_batch(self) -> u64 {
        match self {
            Model::Transformer => ATTN_SEQ_LEN,
            _ => 1,
        }
    }

    /// Builds the forward graph at the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch < self.min_batch()`.
    pub fn forward_graph(self, batch: u64) -> Graph {
        match self {
            Model::InceptionV3 => inception_v3(batch),
            Model::Vgg19 => vgg19(batch),
            Model::ResNet200 => resnet200(batch),
            Model::LeNet => lenet(batch),
            Model::AlexNet => alexnet(batch),
            Model::Gnmt4 => gnmt4(batch),
            Model::Rnnlm => rnnlm(batch),
            Model::Transformer => transformer(batch),
            Model::BertLarge => bert_large(batch),
        }
    }

    /// Builds the per-iteration training graph (forward + backward +
    /// optimizer updates) at the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch < self.min_batch()`.
    pub fn training_graph(self, batch: u64) -> Graph {
        build_training_graph(&self.forward_graph(batch)).expect("model builders produce valid DAGs")
    }

    /// Whether this is one of the five CNN benchmarks.
    pub fn is_cnn(self) -> bool {
        matches!(
            self,
            Model::InceptionV3 | Model::Vgg19 | Model::ResNet200 | Model::LeNet | Model::AlexNet
        )
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(Model::all().len(), 9);
        for m in Model::all() {
            assert!(!m.name().is_empty());
            assert!(m.paper_batch() >= m.min_batch());
        }
    }

    #[test]
    fn every_model_builds_small() {
        for m in Model::all() {
            let batch = m.min_batch().max(4);
            let g = m.forward_graph(batch);
            g.validate().unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn cnn_classification() {
        assert!(Model::Vgg19.is_cnn());
        assert!(!Model::BertLarge.is_cnn());
        assert_eq!(Model::all().iter().filter(|m| m.is_cnn()).count(), 5);
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(Model::Gnmt4.to_string(), "GNMT(4 layers)");
    }
}
