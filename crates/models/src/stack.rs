//! A convenience builder for constructing forward model graphs layer by
//! layer, tracking the current tensor shape and wiring `Variable` ops
//! automatically.

use fastt_graph::{Graph, GraphError, OpId, OpKind, Operation, TensorShape};

/// Incremental forward-graph builder.
///
/// Keeps a *cursor* (the op whose output the next layer consumes) plus its
/// shape; branching topologies (Inception, ResNet) use [`LayerStack::mark`] /
/// [`LayerStack::goto`] to save and restore the cursor.
///
/// # Examples
///
/// ```
/// use fastt_models::LayerStack;
///
/// let mut s = LayerStack::new("input", [4, 32, 32, 3]);
/// s.conv("conv1", 8, 3, 1).relu("relu1").pool("pool1", 2, 2);
/// s.flatten();
/// s.fc("fc", 10);
/// let g = s.finish_with_loss("loss");
/// assert!(g.by_name("conv1").is_some());
/// ```
#[derive(Debug)]
pub struct LayerStack {
    g: Graph,
    cur: OpId,
    shape: TensorShape,
}

/// A saved cursor position: op plus output shape.
#[derive(Debug, Clone)]
pub struct Cursor {
    /// The op whose output the cursor points at.
    pub op: OpId,
    /// That op's output shape.
    pub shape: TensorShape,
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

impl LayerStack {
    /// Starts a new model with an `Input` op of the given shape
    /// (NHWC for images, `[batch, features]` or `[batch, seq, features]`
    /// for sequence models).
    ///
    /// # Panics
    ///
    /// Panics if internal graph construction fails (only possible with
    /// duplicate names, which `new` cannot produce).
    pub fn new(input_name: &str, shape: impl Into<TensorShape>) -> Self {
        let shape = shape.into();
        let mut g = Graph::new();
        let cur = g
            .add_op(Operation::new(input_name, OpKind::Input, shape.clone()))
            .expect("fresh graph");
        LayerStack { g, cur, shape }
    }

    /// Current cursor.
    pub fn mark(&self) -> Cursor {
        Cursor {
            op: self.cur,
            shape: self.shape.clone(),
        }
    }

    /// Moves the cursor to a saved position.
    pub fn goto(&mut self, c: &Cursor) -> &mut Self {
        self.cur = c.op;
        self.shape = c.shape.clone();
        self
    }

    /// Current output shape.
    pub fn shape(&self) -> &TensorShape {
        &self.shape
    }

    /// Direct access to the underlying graph (read-only).
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Direct mutable access to the underlying graph, for topologies the
    /// high-level helpers cannot express (multi-head attention fan-out).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.g
    }

    /// Moves the cursor to an arbitrary op with an explicit shape.
    pub fn set_cursor(&mut self, op: OpId, shape: impl Into<TensorShape>) -> &mut Self {
        self.cur = op;
        self.shape = shape.into();
        self
    }

    /// Adds `op` consuming the outputs of `inputs`, moves the cursor to it.
    pub fn add_with_inputs(&mut self, op: Operation, inputs: &[OpId]) -> OpId {
        let shape = op.out_shape.clone();
        let id = self.add(op);
        for &i in inputs {
            self.connect(i, id);
        }
        self.cur = id;
        self.shape = shape;
        id
    }

    /// Adds `op` with no connections and without moving the cursor.
    pub fn add_detached(&mut self, op: Operation) -> OpId {
        self.add(op)
    }

    /// Adds an edge `from → to` carrying exactly `bytes` (partial tensor
    /// reads: sequence slices, per-head slices of a fused projection).
    pub fn link_bytes(&mut self, from: OpId, to: OpId, bytes: u64) {
        self.g.connect_bytes(from, to, bytes).expect("valid ids");
    }

    /// Takes a slice view of the cursor: an `Identity` op with the given
    /// output shape whose input edge carries only the slice's bytes.
    pub fn slice(&mut self, name: &str, shape: impl Into<TensorShape>) -> &mut Self {
        let shape = shape.into();
        let bytes = shape.bytes();
        let op = self
            .add(Operation::new(name, OpKind::Identity, shape.clone()).with_flops(shape.elems()));
        let prev = self.cur;
        self.link_bytes(prev, op, bytes);
        self.cur = op;
        self.shape = shape;
        self
    }

    fn add(&mut self, op: Operation) -> OpId {
        match self.g.add_op(op) {
            Ok(id) => id,
            Err(GraphError::DuplicateName(n)) => panic!("duplicate layer name `{n}`"),
            Err(e) => panic!("graph construction failed: {e}"),
        }
    }

    fn connect(&mut self, a: OpId, b: OpId) {
        self.g.connect(a, b).expect("valid ids");
    }

    /// Adds a trainable variable of the given shape and returns its id.
    pub fn variable(&mut self, name: &str, shape: impl Into<TensorShape>) -> OpId {
        let shape = shape.into();
        let bytes = shape.bytes();
        self.add(Operation::new(name, OpKind::Variable, shape).with_param_bytes(bytes))
    }

    /// 2-D convolution with `out_ch` output channels, a `k`×`k` kernel and
    /// stride `s` ("same" padding). Requires an NHWC cursor shape.
    ///
    /// # Panics
    ///
    /// Panics if the cursor shape is not rank 4.
    pub fn conv(&mut self, name: &str, out_ch: u64, k: u64, s: u64) -> &mut Self {
        self.conv_rect(name, out_ch, k, k, s)
    }

    /// 2-D convolution with a rectangular `kh`×`kw` kernel (Inception-v3's
    /// factorized 1×7 / 7×1 convolutions).
    ///
    /// # Panics
    ///
    /// Panics if the cursor shape is not rank 4.
    pub fn conv_rect(&mut self, name: &str, out_ch: u64, kh: u64, kw: u64, s: u64) -> &mut Self {
        assert_eq!(
            self.shape.rank(),
            4,
            "conv needs NHWC input, got {}",
            self.shape
        );
        let (n, h, w, c) = (
            self.shape.dim(0),
            self.shape.dim(1),
            self.shape.dim(2),
            self.shape.dim(3),
        );
        let (ho, wo) = (ceil_div(h, s), ceil_div(w, s));
        let wvar = self.variable(&format!("{name}/weights"), [kh, kw, c, out_ch]);
        let flops = 2 * n * ho * wo * kh * kw * c * out_ch;
        let conv =
            self.add(Operation::new(name, OpKind::Conv2D, [n, ho, wo, out_ch]).with_flops(flops));
        let prev = self.cur;
        self.connect(prev, conv);
        self.connect(wvar, conv);
        self.cur = conv;
        self.shape = TensorShape::new([n, ho, wo, out_ch]);
        self
    }

    /// Element-wise ReLU (memory-bound).
    pub fn relu(&mut self, name: &str) -> &mut Self {
        self.activation(name, OpKind::Relu)
    }

    /// Element-wise GeLU (memory-bound, materializes many intermediates in
    /// TF 1.x).
    pub fn gelu(&mut self, name: &str) -> &mut Self {
        self.activation(name, OpKind::Gelu)
    }

    /// Element-wise activation of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not an element-wise activation.
    pub fn activation(&mut self, name: &str, kind: OpKind) -> &mut Self {
        assert!(
            matches!(kind, OpKind::Relu | OpKind::Gelu),
            "not an activation kind: {kind}"
        );
        let elems = self.shape.elems();
        let op = self.add(Operation::new(name, kind, self.shape.clone()).with_flops(elems));
        let prev = self.cur;
        self.connect(prev, op);
        self.cur = op;
        self
    }

    /// Batch normalization (memory-bound, not splittable).
    pub fn batch_norm(&mut self, name: &str) -> &mut Self {
        let elems = self.shape.elems();
        let op = self
            .add(Operation::new(name, OpKind::BatchNorm, self.shape.clone()).with_flops(2 * elems));
        let prev = self.cur;
        self.connect(prev, op);
        self.cur = op;
        self
    }

    /// Layer normalization.
    pub fn layer_norm(&mut self, name: &str) -> &mut Self {
        let elems = self.shape.elems();
        let op = self
            .add(Operation::new(name, OpKind::LayerNorm, self.shape.clone()).with_flops(2 * elems));
        let prev = self.cur;
        self.connect(prev, op);
        self.cur = op;
        self
    }

    /// `k`×`k` pooling with stride `s` (NHWC).
    ///
    /// # Panics
    ///
    /// Panics if the cursor shape is not rank 4.
    pub fn pool(&mut self, name: &str, _k: u64, s: u64) -> &mut Self {
        assert_eq!(self.shape.rank(), 4, "pool needs NHWC input");
        let (n, h, w, c) = (
            self.shape.dim(0),
            self.shape.dim(1),
            self.shape.dim(2),
            self.shape.dim(3),
        );
        let (ho, wo) = (ceil_div(h, s), ceil_div(w, s));
        let elems = self.shape.elems();
        let op = self.add(Operation::new(name, OpKind::Pool, [n, ho, wo, c]).with_flops(elems));
        let prev = self.cur;
        self.connect(prev, op);
        self.cur = op;
        self.shape = TensorShape::new([n, ho, wo, c]);
        self
    }

    /// Global average pooling: collapses H and W.
    pub fn global_pool(&mut self, name: &str) -> &mut Self {
        assert_eq!(self.shape.rank(), 4, "global_pool needs NHWC input");
        let (n, c) = (self.shape.dim(0), self.shape.dim(3));
        let elems = self.shape.elems();
        let op = self.add(Operation::new(name, OpKind::Pool, [n, c]).with_flops(elems));
        let prev = self.cur;
        self.connect(prev, op);
        self.cur = op;
        self.shape = TensorShape::new([n, c]);
        self
    }

    /// Reshapes the cursor to `[batch, features]` without adding an op
    /// (shape bookkeeping only, like a free reshape).
    pub fn flatten(&mut self) -> &mut Self {
        let n = self.shape.dim(0);
        let feat = self.shape.elems() / n;
        self.shape = TensorShape::new([n, feat]);
        self
    }

    /// Fully connected layer: `MatMul` against a fresh `[in, out]` variable.
    /// Works on `[batch, in]` or `[batch, seq, in]` cursors (applied
    /// position-wise for rank 3).
    pub fn fc(&mut self, name: &str, out: u64) -> &mut Self {
        let rank = self.shape.rank();
        assert!(
            rank == 2 || rank == 3,
            "fc needs rank-2/3 input, got {}",
            self.shape
        );
        let inner = self.shape.dim(rank - 1);
        let rows: u64 = self.shape.dims()[..rank - 1].iter().product();
        let wvar = self.variable(&format!("{name}/weights"), [inner, out]);
        let mut dims: Vec<u64> = self.shape.dims().to_vec();
        dims[rank - 1] = out;
        let flops = 2 * rows * inner * out;
        let op = self.add(Operation::new(name, OpKind::MatMul, dims.clone()).with_flops(flops));
        let prev = self.cur;
        self.connect(prev, op);
        self.connect(wvar, op);
        self.cur = op;
        self.shape = TensorShape::new(dims);
        self
    }

    /// Embedding lookup: `[batch, seq]` ids → `[batch, seq, dim]`, with a
    /// `vocab`×`dim` parameter table.
    pub fn embedding(&mut self, name: &str, vocab: u64, dim: u64) -> &mut Self {
        assert_eq!(self.shape.rank(), 2, "embedding needs [batch, seq] input");
        let (n, s) = (self.shape.dim(0), self.shape.dim(1));
        let table = self.variable(&format!("{name}/table"), [vocab, dim]);
        let op =
            self.add(Operation::new(name, OpKind::Embedding, [n, s, dim]).with_flops(n * s * dim));
        let prev = self.cur;
        self.connect(prev, op);
        self.connect(table, op);
        self.cur = op;
        self.shape = TensorShape::new([n, s, dim]);
        self
    }

    /// One fused LSTM cell step over the whole batch: input `[batch, in]`,
    /// state/output `[batch, hidden]`. Carries its own `[in+hidden, 4*hidden]`
    /// weights unless `shared_weights` is given (weight sharing across time
    /// steps, as real RNNs do).
    pub fn lstm_cell(
        &mut self,
        name: &str,
        hidden: u64,
        shared_weights: Option<OpId>,
    ) -> (OpId, OpId) {
        assert_eq!(self.shape.rank(), 2, "lstm_cell needs [batch, in] input");
        let (n, inner) = (self.shape.dim(0), self.shape.dim(1));
        let w = shared_weights.unwrap_or_else(|| {
            self.variable(&format!("{name}/weights"), [inner + hidden, 4 * hidden])
        });
        let flops = 2 * n * (inner + hidden) * 4 * hidden;
        let op = self.add(Operation::new(name, OpKind::LstmCell, [n, hidden]).with_flops(flops));
        let prev = self.cur;
        self.connect(prev, op);
        self.connect(w, op);
        self.cur = op;
        self.shape = TensorShape::new([n, hidden]);
        (op, w)
    }

    /// One fused attention head: scores + softmax + weighted sum over a
    /// `[batch, seq, d_head]` cursor. `flops ≈ 4·batch·seq²·d_head`.
    pub fn attention_head(&mut self, name: &str) -> &mut Self {
        assert_eq!(
            self.shape.rank(),
            3,
            "attention needs [batch, seq, d] input"
        );
        let (n, s, d) = (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2));
        let flops = 4 * n * s * s * d + 3 * n * s * s;
        let op =
            self.add(Operation::new(name, OpKind::Attention, self.shape.clone()).with_flops(flops));
        let prev = self.cur;
        self.connect(prev, op);
        self.cur = op;
        let _ = d;
        self
    }

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, name: &str) -> &mut Self {
        let elems = self.shape.elems();
        let op = self
            .add(Operation::new(name, OpKind::Softmax, self.shape.clone()).with_flops(3 * elems));
        let prev = self.cur;
        self.connect(prev, op);
        self.cur = op;
        self
    }

    /// Element-wise addition of the cursor and another saved position
    /// (residual connections). Shapes must have equal element counts.
    pub fn add_residual(&mut self, name: &str, other: &Cursor) -> &mut Self {
        assert_eq!(
            self.shape.elems(),
            other.shape.elems(),
            "residual shapes must match: {} vs {}",
            self.shape,
            other.shape
        );
        let elems = self.shape.elems();
        let op = self.add(Operation::new(name, OpKind::Add, self.shape.clone()).with_flops(elems));
        let (prev, o) = (self.cur, other.op);
        self.connect(prev, op);
        self.connect(o, op);
        self.cur = op;
        self
    }

    /// Concatenates the cursor with other branches along the channel (last)
    /// dimension.
    pub fn concat(&mut self, name: &str, branches: &[Cursor]) -> &mut Self {
        let rank = self.shape.rank();
        let mut dims: Vec<u64> = self.shape.dims().to_vec();
        for b in branches {
            assert_eq!(b.shape.rank(), rank, "concat rank mismatch");
            dims[rank - 1] += b.shape.dim(rank - 1);
        }
        let elems: u64 = dims.iter().product();
        let op = self.add(Operation::new(name, OpKind::Concat, dims.clone()).with_flops(elems));
        let prev = self.cur;
        self.connect(prev, op);
        for b in branches {
            self.connect(b.op, op);
        }
        self.cur = op;
        self.shape = TensorShape::new(dims);
        self
    }

    /// Appends a `Loss` sink consuming the cursor and returns the finished
    /// forward graph.
    pub fn finish_with_loss(mut self, name: &str) -> Graph {
        let op = self.add(Operation::new(name, OpKind::Loss, TensorShape::scalar()));
        let prev = self.cur;
        self.connect(prev, op);
        self.g
    }

    /// Returns the graph without adding a loss (caller wires its own sink).
    pub fn into_graph(self) -> Graph {
        self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_tracks_shape_and_flops() {
        let mut s = LayerStack::new("in", [8, 32, 32, 3]);
        s.conv("c1", 16, 3, 2);
        assert_eq!(s.shape().dims(), &[8, 16, 16, 16]);
        let g = s.graph();
        let c = g.op_ref(g.by_name("c1").unwrap());
        assert_eq!(c.flops, 2 * 8 * 16 * 16 * 3 * 3 * 3 * 16);
        // weight variable exists with the right parameter size
        let w = g.op_ref(g.by_name("c1/weights").unwrap());
        assert_eq!(w.param_bytes, 3 * 3 * 3 * 16 * 4);
    }

    #[test]
    fn fc_after_flatten() {
        let mut s = LayerStack::new("in", [4, 8, 8, 2]);
        s.flatten();
        assert_eq!(s.shape().dims(), &[4, 128]);
        s.fc("fc", 10);
        assert_eq!(s.shape().dims(), &[4, 10]);
    }

    #[test]
    fn residual_and_branches() {
        let mut s = LayerStack::new("in", [2, 8, 8, 4]);
        let saved = s.mark();
        s.conv("c", 4, 3, 1).relu("r");
        s.add_residual("add", &saved);
        assert_eq!(s.shape().dims(), &[2, 8, 8, 4]);
        let g = s.graph();
        assert_eq!(g.preds(g.by_name("add").unwrap()).count(), 2);
    }

    #[test]
    fn concat_extends_channels() {
        let mut s = LayerStack::new("in", [2, 8, 8, 4]);
        let root = s.mark();
        s.conv("b1", 8, 1, 1);
        let b1 = s.mark();
        s.goto(&root).conv("b2", 16, 3, 1);
        s.concat("cat", &[b1]);
        assert_eq!(s.shape().dims(), &[2, 8, 8, 24]);
    }

    #[test]
    fn lstm_weight_sharing() {
        let mut s = LayerStack::new("in", [4, 32]);
        let (_, w) = s.lstm_cell("t0", 64, None);
        let before = s.graph().op_count();
        s.lstm_cell("t1", 64, Some(w));
        // only the cell op was added, no new variable
        assert_eq!(s.graph().op_count(), before + 1);
    }

    #[test]
    fn embedding_shape() {
        let mut s = LayerStack::new("ids", [4, 16]);
        s.embedding("emb", 1000, 64);
        assert_eq!(s.shape().dims(), &[4, 16, 64]);
        let g = s.graph();
        let t = g.op_ref(g.by_name("emb/table").unwrap());
        assert_eq!(t.param_bytes, 1000 * 64 * 4);
    }

    #[test]
    fn finished_graph_validates() {
        let mut s = LayerStack::new("in", [2, 16, 16, 3]);
        s.conv("c", 4, 3, 1).relu("r").pool("p", 2, 2);
        s.flatten();
        s.fc("fc", 10);
        let g = s.finish_with_loss("loss");
        g.validate().unwrap();
        assert!(g.exit_ops().contains(&g.by_name("loss").unwrap()));
    }

    #[test]
    #[should_panic(expected = "duplicate layer name")]
    fn duplicate_layer_names_panic() {
        let mut s = LayerStack::new("in", [2, 8, 8, 3]);
        s.conv("c", 4, 3, 1);
        s.conv("c", 4, 3, 1);
    }
}
