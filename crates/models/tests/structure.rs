//! Structural integration tests of the benchmark models: the properties the
//! placement algorithms rely on (shape pyramids, attention wiring, batch
//! scaling, splittability of the ops the paper's Table 6 names).

use fastt_graph::{OpKind, SplitDim};
use fastt_models::Model;

#[test]
fn cnn_activation_pyramids_shrink_spatially() {
    // conv output bytes must (weakly) decrease from the first conv block to
    // the last: spatial shrinking dominates channel growth in these nets
    for m in [Model::Vgg19, Model::AlexNet] {
        let g = m.forward_graph(8);
        let convs: Vec<u64> = g
            .iter_ops()
            .filter(|(_, o)| o.kind == OpKind::Conv2D)
            .map(|(_, o)| o.out_bytes())
            .collect();
        assert!(convs.len() >= 5, "{m}: too few convs");
        assert!(
            convs.first().unwrap() >= convs.last().unwrap(),
            "{m}: pyramid should narrow"
        );
    }
}

#[test]
fn paper_table6_split_candidates_are_splittable() {
    // Table 6's key split ops: Conv2D/Conv2Dbp for CNNs, MatMul for
    // attention models — the kinds must advertise split dimensions.
    for kind in [OpKind::Conv2D, OpKind::Conv2DBackprop, OpKind::MatMul] {
        assert!(!kind.split_dims().is_empty(), "{kind} must be splittable");
    }
    // ... and the batch dimensions of the paper-batch graphs divide evenly
    for m in [Model::Vgg19, Model::InceptionV3, Model::BertLarge] {
        let g = m.training_graph(m.paper_batch().min(16));
        let candidate = g
            .iter_ops()
            .filter(|(_, o)| !o.kind.split_dims().is_empty())
            .max_by_key(|(_, o)| o.flops);
        let (_, o) = candidate.expect("has splittable ops");
        assert!(
            o.out_shape.divisible(0, 2),
            "{m}: `{}` batch {} not divisible by 2",
            o.name,
            o.out_shape.dim(0)
        );
    }
}

#[test]
fn lstm_models_have_no_splittable_heavy_ops_on_cells() {
    // Table 6: GNMT/RNNLM show "None" — their LSTM cells are fused and the
    // per-step projections are the only MatMuls; verify cells dominate the
    // op count among compute ops
    for m in [Model::Gnmt4, Model::Rnnlm] {
        let g = m.forward_graph(16);
        let cells = g
            .iter_ops()
            .filter(|(_, o)| o.kind == OpKind::LstmCell)
            .count();
        assert!(cells >= 20, "{m}: expected an unrolled cell chain");
    }
}

#[test]
fn attention_models_head_fanout_is_complete() {
    let g = Model::BertLarge.forward_graph(2);
    // each attention head reads q, k and v
    for (oid, o) in g.iter_ops() {
        if o.kind == OpKind::Attention {
            assert_eq!(g.preds(oid).count(), 3, "`{}` should read q,k,v", o.name);
        }
    }
}

#[test]
fn batch_one_builds_everywhere() {
    for m in Model::all() {
        let b = m.min_batch();
        let g = m.training_graph(b);
        g.validate().unwrap_or_else(|e| panic!("{m}: {e}"));
    }
}

#[test]
fn flops_scale_linearly_with_batch() {
    for m in [Model::Vgg19, Model::Rnnlm, Model::BertLarge] {
        let base = m.min_batch().max(2);
        let f1 = m.forward_graph(base).total_flops() as f64;
        let f2 = m.forward_graph(base * 2).total_flops() as f64;
        let ratio = f2 / f1;
        assert!(
            (1.7..2.3).contains(&ratio),
            "{m}: flops ratio {ratio} not ~2 (attention grows superlinearly \
             only in seq len, which is fixed)"
        );
    }
}

#[test]
fn variables_feed_their_consumers_and_nothing_feeds_variables() {
    for m in Model::all() {
        let g = m.forward_graph(m.min_batch().max(2));
        for (oid, o) in g.iter_ops() {
            if o.kind == OpKind::Variable {
                assert!(g.preds(oid).next().is_none(), "{m}: `{}` has preds", o.name);
                assert!(g.succs(oid).next().is_some(), "{m}: `{}` unused", o.name);
            }
        }
    }
}

#[test]
fn split_dims_match_kind_semantics() {
    assert_eq!(
        OpKind::Conv2D.split_dims(),
        &[SplitDim::Batch, SplitDim::Channel]
    );
    assert_eq!(OpKind::Attention.split_dims(), &[SplitDim::Batch]);
    assert!(OpKind::BatchNorm.split_dims().is_empty());
    assert!(OpKind::LstmCell.split_dims().is_empty());
}
