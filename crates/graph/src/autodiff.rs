//! Backward-pass generation: turns a forward inference graph into a full
//! training graph (forward + gradients + optimizer updates).
//!
//! FastT operates on the *training* DAG — the graph TensorFlow would execute
//! per iteration, including gradient ops and weight updates. Model builders in
//! `fastt-models` construct forward graphs; this module derives the rest.
//!
//! The generated structure follows the standard reverse-mode recipe:
//!
//! * every forward op `x` (except `Input`/`Variable`) gets a gradient op
//!   `grad/x` with roughly twice the forward flops;
//! * gradient ops are connected in reverse: for each forward edge `a → b`
//!   there is an edge `grad/b → grad/a` carrying the same tensor size;
//! * gradient ops also consume the forward activations they differentiate
//!   (edge `a → grad/b`), which is what makes activation placement matter;
//! * every `Variable` `v` gets an `apply/v` update op colocated with it,
//!   fed by the gradient ops of `v`'s consumers.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::op::{OpId, OpKind, Operation};
use crate::shape::{TensorShape, BYTES_PER_ELEM};

/// Gradient-op kind for a forward-op kind.
///
/// Compute-heavy forward kinds keep a compute-heavy backward kind (so the
/// simulator's hardware model treats them consistently); everything else
/// becomes a generic memory-bound [`OpKind::EltwiseGrad`].
pub fn grad_kind(fwd: OpKind) -> OpKind {
    match fwd {
        OpKind::Conv2D => OpKind::Conv2DBackprop,
        OpKind::MatMul => OpKind::MatMul,
        OpKind::LstmCell => OpKind::LstmCell,
        OpKind::Attention => OpKind::Attention,
        _ => OpKind::EltwiseGrad,
    }
}

/// Ratio of backward to forward flops. The conventional estimate for DNN
/// training is that the backward pass costs about twice the forward pass.
pub const BACKWARD_FLOP_FACTOR: u64 = 2;

/// Builds a training graph from a forward graph.
///
/// The result contains every forward op (same names and ids), one `grad/…` op
/// per differentiable forward op, and one `apply/…` op per `Variable`,
/// colocated with its variable (TensorFlow keeps the update kernel on the
/// variable's device; FastT's device placer "checks the co-location
/// constraints of operations", Sec. 6.1).
///
/// # Errors
///
/// Returns an error if `forward` is not a DAG.
///
/// # Examples
///
/// ```
/// use fastt_graph::{Graph, OpKind, Operation, build_training_graph};
///
/// let mut g = Graph::new();
/// let x = g.add_op(Operation::new("x", OpKind::Input, [8, 4]))?;
/// let w = g.add_op(Operation::new("w", OpKind::Variable, [4, 2]).with_param_bytes(32))?;
/// let mm = g.add_op(Operation::new("mm", OpKind::MatMul, [8, 2]).with_flops(128))?;
/// let loss = g.add_op(Operation::new("loss", OpKind::Loss, []))?;
/// g.connect(x, mm)?;
/// g.connect(w, mm)?;
/// g.connect(mm, loss)?;
///
/// let t = build_training_graph(&g)?;
/// assert!(t.by_name("grad/mm").is_some());
/// assert!(t.by_name("apply/w").is_some());
/// # Ok::<(), fastt_graph::GraphError>(())
/// ```
pub fn build_training_graph(forward: &Graph) -> Result<Graph, GraphError> {
    let topo = forward.topo_order()?;
    let mut g = forward.clone();

    // Create gradient ops in reverse topological order.
    let mut grad_of: Vec<Option<OpId>> = vec![None; forward.op_count()];
    for &fid in topo.iter().rev() {
        let fop = forward.op_ref(fid);
        if matches!(fop.kind, OpKind::Input | OpKind::Variable) {
            continue;
        }
        let gop = Operation::new(
            format!("grad/{}", fop.name),
            grad_kind(fop.kind),
            fop.out_shape.clone(),
        )
        .with_flops(fop.flops * BACKWARD_FLOP_FACTOR);
        let gid = g.add_op(gop)?;
        grad_of[fid.index()] = Some(gid);
    }

    // Wire gradients: reverse edges between grad ops, plus activation edges.
    for e in forward.iter_edges() {
        let (gsrc, gdst) = (grad_of[e.src.index()], grad_of[e.dst.index()]);
        if let (Some(gs), Some(gd)) = (gsrc, gdst) {
            // upstream gradient flows backward along the forward edge
            g.connect_bytes(gd, gs, e.bytes)?;
        }
        if let Some(gd) = gdst {
            // the gradient of `dst` re-reads the forward activation of `src`
            // (skip Variables: their value is re-read by apply instead)
            if !forward.op_ref(e.src).kind.is_variable() {
                g.connect_bytes(e.src, gd, e.bytes)?;
            }
        }
    }

    // One optimizer update per variable, fed by the gradients of all its
    // consumers, colocated with the variable. When the variable is shared by
    // several consumers (weight sharing across time steps), the per-consumer
    // gradients are summed locally first (TF's AddN) so only one
    // parameter-sized gradient tensor travels to the update.
    for (vid, vop) in forward.iter_ops() {
        if !vop.kind.is_variable() {
            continue;
        }
        let elems = vop.param_bytes / BYTES_PER_ELEM;
        let grad_srcs: Vec<crate::op::OpId> = forward
            .succs(vid)
            .filter_map(|cons| grad_of[cons.index()])
            .collect();
        let apply = Operation::new(
            format!("apply/{}", vop.name),
            OpKind::ApplyGradient,
            TensorShape::new([1]),
        )
        // Adam-style update touches each parameter a handful of times.
        .with_flops(elems * 4);
        let aid = g.add_op(apply)?;
        g.connect_bytes(vid, aid, vop.param_bytes)?;
        match grad_srcs.len() {
            0 => {}
            1 => {
                g.connect_bytes(grad_srcs[0], aid, vop.param_bytes)?;
            }
            n => {
                let sum = Operation::new(
                    format!("grad_sum/{}", vop.name),
                    OpKind::Add,
                    TensorShape::new([elems.max(1)]),
                )
                .with_flops(elems * n as u64);
                let sid = g.add_op(sum)?;
                for gc in grad_srcs {
                    g.connect_bytes(gc, sid, vop.param_bytes)?;
                }
                g.connect_bytes(sid, aid, vop.param_bytes)?;
            }
        }
        g.colocate(&[vid, aid]);
    }

    g.validate()?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_forward() -> Graph {
        let mut g = Graph::new();
        let x = g
            .add_op(Operation::new("x", OpKind::Input, [8, 4]))
            .unwrap();
        let w = g
            .add_op(Operation::new("w", OpKind::Variable, [4, 2]).with_param_bytes(32))
            .unwrap();
        let mm = g
            .add_op(Operation::new("mm", OpKind::MatMul, [8, 2]).with_flops(128))
            .unwrap();
        let r = g
            .add_op(Operation::new("r", OpKind::Relu, [8, 2]).with_flops(16))
            .unwrap();
        let loss = g.add_op(Operation::new("loss", OpKind::Loss, [])).unwrap();
        g.connect(x, mm).unwrap();
        g.connect(w, mm).unwrap();
        g.connect(mm, r).unwrap();
        g.connect(r, loss).unwrap();
        g
    }

    #[test]
    fn creates_grad_and_apply_ops() {
        let t = build_training_graph(&tiny_forward()).unwrap();
        for name in ["grad/mm", "grad/r", "grad/loss", "apply/w"] {
            assert!(t.by_name(name).is_some(), "missing {name}");
        }
        // Inputs and variables have no gradient ops of their own.
        assert!(t.by_name("grad/x").is_none());
        assert!(t.by_name("grad/w").is_none());
    }

    #[test]
    fn result_is_a_dag() {
        let t = build_training_graph(&tiny_forward()).unwrap();
        t.validate().unwrap();
    }

    #[test]
    fn backward_flops_double_forward() {
        let t = build_training_graph(&tiny_forward()).unwrap();
        let mm = t.op_ref(t.by_name("mm").unwrap());
        let gmm = t.op_ref(t.by_name("grad/mm").unwrap());
        assert_eq!(gmm.flops, mm.flops * BACKWARD_FLOP_FACTOR);
        assert_eq!(gmm.kind, OpKind::MatMul);
    }

    #[test]
    fn grad_edges_reverse_forward_edges() {
        let t = build_training_graph(&tiny_forward()).unwrap();
        let g_r = t.by_name("grad/r").unwrap();
        let g_mm = t.by_name("grad/mm").unwrap();
        assert!(
            t.succs(g_r).any(|s| s == g_mm),
            "grad/r should feed grad/mm"
        );
    }

    #[test]
    fn activation_edges_present() {
        let t = build_training_graph(&tiny_forward()).unwrap();
        let mm = t.by_name("mm").unwrap();
        let g_r = t.by_name("grad/r").unwrap();
        assert!(
            t.succs(mm).any(|s| s == g_r),
            "mm activation should feed grad/r"
        );
    }

    #[test]
    fn apply_colocated_with_variable() {
        let t = build_training_graph(&tiny_forward()).unwrap();
        let w = t.by_name("w").unwrap();
        let a = t.by_name("apply/w").unwrap();
        let grp = t.colocation_group(w).expect("variable should be grouped");
        assert!(grp.contains(&a));
    }

    #[test]
    fn apply_receives_gradient_bytes() {
        let t = build_training_graph(&tiny_forward()).unwrap();
        let a = t.by_name("apply/w").unwrap();
        let g_mm = t.by_name("grad/mm").unwrap();
        let e = t
            .in_edges(a)
            .find(|e| e.src == g_mm)
            .expect("grad edge into apply");
        assert_eq!(e.bytes, 32);
    }

    #[test]
    fn exit_is_apply_ops() {
        let t = build_training_graph(&tiny_forward()).unwrap();
        let exits = t.exit_ops();
        let a = t.by_name("apply/w").unwrap();
        assert!(exits.contains(&a));
    }

    #[test]
    fn shared_variable_multiple_consumers() {
        let mut g = Graph::new();
        let x = g
            .add_op(Operation::new("x", OpKind::Input, [4, 4]))
            .unwrap();
        let w = g
            .add_op(Operation::new("w", OpKind::Variable, [4, 4]).with_param_bytes(64))
            .unwrap();
        let m1 = g
            .add_op(Operation::new("m1", OpKind::MatMul, [4, 4]).with_flops(64))
            .unwrap();
        let m2 = g
            .add_op(Operation::new("m2", OpKind::MatMul, [4, 4]).with_flops(64))
            .unwrap();
        let l = g.add_op(Operation::new("l", OpKind::Loss, [])).unwrap();
        g.connect(x, m1).unwrap();
        g.connect(w, m1).unwrap();
        g.connect(m1, m2).unwrap();
        g.connect(w, m2).unwrap();
        g.connect(m2, l).unwrap();
        let t = build_training_graph(&g).unwrap();
        let a = t.by_name("apply/w").unwrap();
        // both consumers' grads are summed locally (TF AddN), so the apply
        // op reads the variable plus exactly one summed gradient
        assert_eq!(t.preds(a).count(), 2);
        let s = t.by_name("grad_sum/w").expect("local gradient sum");
        assert_eq!(t.preds(s).count(), 2);
        assert!(t.succs(s).any(|x| x == a));
    }
}
