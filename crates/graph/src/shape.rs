//! Tensor shapes.
//!
//! A [`TensorShape`] is a list of non-negative dimension extents. FastT's
//! algorithms never look at tensor *values*, only at shapes (to derive byte
//! sizes and split factors), so the shape type is the whole tensor abstraction
//! needed by this workspace.

use std::fmt;

/// Number of bytes per tensor element. All benchmark models train in `f32`.
pub const BYTES_PER_ELEM: u64 = 4;

/// The shape of a tensor: an ordered list of dimension extents.
///
/// # Examples
///
/// ```
/// use fastt_graph::TensorShape;
///
/// let s = TensorShape::new([32, 224, 224, 3]);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.elems(), 32 * 224 * 224 * 3);
/// assert_eq!(s.bytes(), s.elems() * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TensorShape(Vec<u64>);

impl TensorShape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: impl IntoIterator<Item = u64>) -> Self {
        TensorShape(dims.into_iter().collect())
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        TensorShape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[u64] {
        &self.0
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn elems(&self) -> u64 {
        self.0.iter().product()
    }

    /// Total size in bytes assuming `f32` elements.
    pub fn bytes(&self) -> u64 {
        self.elems() * BYTES_PER_ELEM
    }

    /// Returns a copy with dimension `i` divided by `n` (at least 1).
    ///
    /// Used by the split rewrite: partitioning a tensor along one dimension
    /// into `n` pieces shrinks that dimension by a factor of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()` or `n == 0`.
    pub fn split_dim(&self, i: usize, n: u64) -> Self {
        assert!(n > 0, "split factor must be positive");
        let mut dims = self.0.clone();
        dims[i] = (dims[i] / n).max(1);
        TensorShape(dims)
    }

    /// Whether dimension `i` can be evenly partitioned `n` ways.
    pub fn divisible(&self, i: usize, n: u64) -> bool {
        n > 0 && i < self.rank() && self.0[i].is_multiple_of(n) && self.0[i] >= n
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<u64>> for TensorShape {
    fn from(dims: Vec<u64>) -> Self {
        TensorShape(dims)
    }
}

impl<const N: usize> From<[u64; N]> for TensorShape {
    fn from(dims: [u64; N]) -> Self {
        TensorShape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_elem() {
        let s = TensorShape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.elems(), 1);
        assert_eq!(s.bytes(), BYTES_PER_ELEM);
    }

    #[test]
    fn elems_and_bytes() {
        let s = TensorShape::new([2, 3, 4]);
        assert_eq!(s.elems(), 24);
        assert_eq!(s.bytes(), 96);
    }

    #[test]
    fn split_dim_divides() {
        let s = TensorShape::new([32, 128]);
        let t = s.split_dim(0, 4);
        assert_eq!(t.dims(), &[8, 128]);
        // original untouched
        assert_eq!(s.dims(), &[32, 128]);
    }

    #[test]
    fn split_dim_clamps_to_one() {
        let s = TensorShape::new([2, 8]);
        let t = s.split_dim(0, 4);
        assert_eq!(t.dims(), &[1, 8]);
    }

    #[test]
    fn divisible_checks() {
        let s = TensorShape::new([32, 7]);
        assert!(s.divisible(0, 4));
        assert!(!s.divisible(1, 4));
        assert!(!s.divisible(0, 0));
        assert!(!s.divisible(2, 2)); // out of range
        assert!(!s.divisible(1, 14)); // n larger than extent
    }

    #[test]
    fn display_format() {
        assert_eq!(TensorShape::new([4, 5]).to_string(), "[4x5]");
        assert_eq!(TensorShape::scalar().to_string(), "[]");
    }

    #[test]
    fn from_array_and_vec() {
        let a: TensorShape = [1, 2].into();
        let v: TensorShape = vec![1, 2].into();
        assert_eq!(a, v);
    }
}
