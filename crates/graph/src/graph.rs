//! The computation graph: a DAG of [`Operation`]s connected by tensor edges.

use crate::error::GraphError;
use crate::op::{OpId, OpKind, Operation};
use std::collections::HashMap;

/// Identifier of an edge within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed tensor edge `src → dst` carrying `bytes` of data.
///
/// Edge byte counts drive the communication cost model: when `src` and `dst`
/// are placed on different devices, `bytes` must cross the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producer operation.
    pub src: OpId,
    /// Consumer operation.
    pub dst: OpId,
    /// Size of the transferred tensor in bytes.
    pub bytes: u64,
}

/// A DAG whose nodes are operations and whose edges are tensors
/// (Sec. 2.1 of the paper).
///
/// The graph is append-only: rewrites produce new graphs rather than mutating
/// in place, which keeps op ids stable for the lifetime of a strategy
/// computation.
///
/// # Examples
///
/// ```
/// use fastt_graph::{Graph, OpKind, Operation};
///
/// let mut g = Graph::new();
/// let x = g.add_op(Operation::new("x", OpKind::Input, [32, 8]))?;
/// let w = g.add_op(Operation::new("w", OpKind::Variable, [8, 4]).with_param_bytes(128))?;
/// let y = g.add_op(Operation::new("y", OpKind::MatMul, [32, 4]).with_flops(2 * 32 * 8 * 4))?;
/// g.connect(x, y)?;
/// g.connect(w, y)?;
/// assert_eq!(g.topo_order()?.len(), 3);
/// # Ok::<(), fastt_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    ops: Vec<Operation>,
    edges: Vec<Edge>,
    in_edges: Vec<Vec<EdgeId>>,
    out_edges: Vec<Vec<EdgeId>>,
    names: HashMap<String, OpId>,
    /// Colocation groups: ops in the same group must share a device
    /// (e.g. a `Variable` and its `ApplyGradient`).
    groups: Vec<Vec<OpId>>,
    group_of: Vec<Option<u32>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds an operation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateName`] if an op with the same name
    /// already exists.
    pub fn add_op(&mut self, op: Operation) -> Result<OpId, GraphError> {
        if self.names.contains_key(&op.name) {
            return Err(GraphError::DuplicateName(op.name));
        }
        let id = OpId(self.ops.len() as u32);
        self.names.insert(op.name.clone(), id);
        self.ops.push(op);
        self.in_edges.push(Vec::new());
        self.out_edges.push(Vec::new());
        self.group_of.push(None);
        Ok(id)
    }

    /// Connects `src → dst`, carrying the full output tensor of `src`.
    ///
    /// # Errors
    ///
    /// Returns an error if either id is invalid or `src == dst`.
    pub fn connect(&mut self, src: OpId, dst: OpId) -> Result<EdgeId, GraphError> {
        let bytes = self.op(src).ok_or(GraphError::InvalidOp(src))?.out_bytes();
        self.connect_bytes(src, dst, bytes)
    }

    /// Connects `src → dst` with an explicit byte count (used by rewrites
    /// that partition tensors).
    ///
    /// # Errors
    ///
    /// Returns an error if either id is invalid or `src == dst`.
    pub fn connect_bytes(
        &mut self,
        src: OpId,
        dst: OpId,
        bytes: u64,
    ) -> Result<EdgeId, GraphError> {
        if src.index() >= self.ops.len() {
            return Err(GraphError::InvalidOp(src));
        }
        if dst.index() >= self.ops.len() {
            return Err(GraphError::InvalidOp(dst));
        }
        if src == dst {
            return Err(GraphError::SelfEdge(src));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, bytes });
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        Ok(id)
    }

    /// Declares that all `ops` must be placed on the same device.
    ///
    /// Ops already in a group are merged into the new group.
    pub fn colocate(&mut self, ops: &[OpId]) {
        let gid = self.groups.len() as u32;
        let mut members = Vec::new();
        for &o in ops {
            match self.group_of[o.index()] {
                Some(old) => {
                    // merge the old group into the new one
                    let old_members = std::mem::take(&mut self.groups[old as usize]);
                    for m in old_members {
                        if !members.contains(&m) {
                            members.push(m);
                        }
                    }
                }
                None => {
                    if !members.contains(&o) {
                        members.push(o);
                    }
                }
            }
        }
        for &m in &members {
            self.group_of[m.index()] = Some(gid);
        }
        self.groups.push(members);
    }

    /// Colocation group members for `op` (including `op` itself), or `None`
    /// if unconstrained.
    pub fn colocation_group(&self, op: OpId) -> Option<&[OpId]> {
        self.group_of[op.index()].map(|g| self.groups[g as usize].as_slice())
    }

    /// All non-empty colocation groups.
    pub fn colocation_groups(&self) -> impl Iterator<Item = &[OpId]> + '_ {
        self.groups
            .iter()
            .filter(|g| !g.is_empty())
            .map(|g| g.as_slice())
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The operation with id `id`, if it exists.
    pub fn op(&self, id: OpId) -> Option<&Operation> {
        self.ops.get(id.index())
    }

    /// The operation with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in this graph. Use [`Graph::op`] for a checked
    /// lookup.
    pub fn op_ref(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Looks an operation up by name.
    pub fn by_name(&self, name: &str) -> Option<OpId> {
        self.names.get(name).copied()
    }

    /// The edge with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in this graph.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all op ids in insertion order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Iterates over all ops with their ids.
    pub fn iter_ops(&self) -> impl Iterator<Item = (OpId, &Operation)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (OpId(i as u32), op))
    }

    /// Iterates over all edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Incoming edges of `op`.
    pub fn in_edges(&self, op: OpId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_edges[op.index()]
            .iter()
            .map(move |&e| &self.edges[e.index()])
    }

    /// Outgoing edges of `op`.
    pub fn out_edges(&self, op: OpId) -> impl Iterator<Item = &Edge> + '_ {
        self.out_edges[op.index()]
            .iter()
            .map(move |&e| &self.edges[e.index()])
    }

    /// Immediate predecessors of `op` (paper notation: `pred(o_i)`).
    pub fn preds(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.in_edges(op).map(|e| e.src)
    }

    /// Immediate successors of `op` (paper notation: `succ(o_i)`).
    pub fn succs(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.out_edges(op).map(|e| e.dst)
    }

    /// Ops with no incoming edges.
    pub fn entry_ops(&self) -> Vec<OpId> {
        self.op_ids()
            .filter(|o| self.in_edges[o.index()].is_empty())
            .collect()
    }

    /// Ops with no outgoing edges.
    pub fn exit_ops(&self) -> Vec<OpId> {
        self.op_ids()
            .filter(|o| self.out_edges[o.index()].is_empty())
            .collect()
    }

    /// A topological order of all ops (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the graph is not a DAG.
    pub fn topo_order(&self) -> Result<Vec<OpId>, GraphError> {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.dst.index()] += 1;
        }
        let mut queue: Vec<OpId> = self.op_ids().filter(|o| indeg[o.index()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let o = queue[head];
            head += 1;
            order.push(o);
            for &eid in &self.out_edges[o.index()] {
                let d = self.edges[eid.index()].dst;
                indeg[d.index()] -= 1;
                if indeg[d.index()] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cycle)
        }
    }

    /// Validates that the graph is a DAG and every colocation group is
    /// consistent.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.topo_order()?;
        Ok(())
    }

    /// Total floating-point work per execution of the graph.
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|o| o.flops).sum()
    }

    /// Total trainable parameter bytes.
    pub fn total_param_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.param_bytes).sum()
    }

    /// Number of ops per [`OpKind`].
    pub fn kind_histogram(&self) -> HashMap<OpKind, usize> {
        let mut h = HashMap::new();
        for op in &self.ops {
            *h.entry(op.kind).or_insert(0) += 1;
        }
        h
    }

    /// Deterministic 64-bit hash of the graph *structure*: every operation
    /// (in id order — ids are append-only and stable) with its name, kind,
    /// output shape, flops and parameter bytes, every edge with its byte
    /// count, and every colocation group. Two graphs that the placement
    /// algorithms cannot distinguish hash identically; any rewrite
    /// (replication, splitting, survivor rebuild) changes the hash.
    ///
    /// Uses [`std::collections::hash_map::DefaultHasher`] with its default
    /// keys, so the value is stable across processes and runs — suitable as
    /// a plan-cache fingerprint component.
    pub fn structure_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.op_count().hash(&mut h);
        for (id, op) in self.iter_ops() {
            id.index().hash(&mut h);
            op.name.hash(&mut h);
            op.kind.hash(&mut h);
            op.out_shape.hash(&mut h);
            op.flops.hash(&mut h);
            op.param_bytes.hash(&mut h);
            op.collective.hash(&mut h);
        }
        self.edge_count().hash(&mut h);
        for e in self.iter_edges() {
            e.src.index().hash(&mut h);
            e.dst.index().hash(&mut h);
            e.bytes.hash(&mut h);
        }
        for group in self.colocation_groups() {
            for op in group {
                op.index().hash(&mut h);
            }
            usize::MAX.hash(&mut h); // group separator
        }
        h.finish()
    }

    /// Summary statistics, for logging and experiment reports.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            ops: self.op_count(),
            edges: self.edge_count(),
            total_flops: self.total_flops(),
            total_param_bytes: self.total_param_bytes(),
            entry_ops: self.entry_ops().len(),
            exit_ops: self.exit_ops().len(),
        }
    }
}

/// Summary statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of operations.
    pub ops: usize,
    /// Number of edges.
    pub edges: usize,
    /// Total floating point work.
    pub total_flops: u64,
    /// Total trainable parameter bytes.
    pub total_param_bytes: u64,
    /// Number of source ops.
    pub entry_ops: usize,
    /// Number of sink ops.
    pub exit_ops: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, [OpId; 4]) {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [4])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [4])).unwrap();
        let c = g.add_op(Operation::new("c", OpKind::Relu, [4])).unwrap();
        let d = g.add_op(Operation::new("d", OpKind::Add, [4])).unwrap();
        g.connect(a, b).unwrap();
        g.connect(a, c).unwrap();
        g.connect(b, d).unwrap();
        g.connect(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = Graph::new();
        g.add_op(Operation::new("x", OpKind::Input, [1])).unwrap();
        let err = g
            .add_op(Operation::new("x", OpKind::Input, [1]))
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateName("x".into()));
    }

    #[test]
    fn self_edges_rejected() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [1])).unwrap();
        assert_eq!(g.connect(a, a).unwrap_err(), GraphError::SelfEdge(a));
    }

    #[test]
    fn invalid_ids_rejected() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [1])).unwrap();
        let bogus = OpId(99);
        assert_eq!(
            g.connect(a, bogus).unwrap_err(),
            GraphError::InvalidOp(bogus)
        );
        assert_eq!(
            g.connect(bogus, a).unwrap_err(),
            GraphError::InvalidOp(bogus)
        );
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topo_order().unwrap();
        let pos = |o: OpId| order.iter().position(|&x| x == o).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn cycle_detected() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Relu, [1])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [1])).unwrap();
        g.connect(a, b).unwrap();
        g.connect(b, a).unwrap();
        assert_eq!(g.topo_order().unwrap_err(), GraphError::Cycle);
        assert!(g.validate().is_err());
    }

    #[test]
    fn entry_and_exit_ops() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.entry_ops(), vec![a]);
        assert_eq!(g.exit_ops(), vec![d]);
    }

    #[test]
    fn preds_succs() {
        let (g, [a, b, c, d]) = diamond();
        let mut s: Vec<_> = g.succs(a).collect();
        s.sort();
        assert_eq!(s, vec![b, c]);
        let mut p: Vec<_> = g.preds(d).collect();
        p.sort();
        assert_eq!(p, vec![b, c]);
    }

    #[test]
    fn edge_bytes_default_to_src_output() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [8])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [8])).unwrap();
        let e = g.connect(a, b).unwrap();
        assert_eq!(g.edge(e).bytes, 32);
    }

    #[test]
    fn colocation_groups_merge() {
        let (mut g, [a, b, c, d]) = diamond();
        g.colocate(&[a, b]);
        g.colocate(&[b, c, d]);
        let grp = g.colocation_group(a).unwrap();
        assert_eq!(grp.len(), 4);
        for o in [a, b, c, d] {
            assert!(g.colocation_group(o).unwrap().contains(&o));
        }
    }

    #[test]
    fn structure_hash_is_stable_and_sensitive() {
        let (g1, _) = diamond();
        let (g2, [a2, b2, ..]) = diamond();
        // identical construction → identical hash (and repeatable)
        assert_eq!(g1.structure_hash(), g2.structure_hash());
        assert_eq!(g1.structure_hash(), g1.structure_hash());

        // structural changes move the hash
        let mut extra = g2.clone();
        extra
            .add_op(Operation::new("tail", OpKind::Relu, [1]))
            .unwrap();
        assert_ne!(g1.structure_hash(), extra.structure_hash());
        let mut coloc = g2.clone();
        coloc.colocate(&[a2, b2]);
        assert_ne!(g1.structure_hash(), coloc.structure_hash());
    }

    #[test]
    fn stats_counts() {
        let (g, _) = diamond();
        let s = g.stats();
        assert_eq!(s.ops, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.entry_ops, 1);
        assert_eq!(s.exit_ops, 1);
    }

    #[test]
    fn by_name_lookup() {
        let (g, [a, ..]) = diamond();
        assert_eq!(g.by_name("a"), Some(a));
        assert_eq!(g.by_name("nope"), None);
    }

    #[test]
    fn kind_histogram_counts() {
        let (g, _) = diamond();
        let h = g.kind_histogram();
        assert_eq!(h[&OpKind::Relu], 2);
        assert_eq!(h[&OpKind::Input], 1);
        assert_eq!(h[&OpKind::Add], 1);
    }
}
