//! # fastt-graph
//!
//! Dataflow computation-graph substrate for the FastT reproduction
//! (*"Fast Training of Deep Learning Models over Multiple GPUs"*,
//! Middleware '20).
//!
//! A training job is represented as a DAG whose nodes are [`Operation`]s
//! (Conv2D, MatMul, …) and whose edges are tensors (Sec. 2.1 of the paper).
//! This crate provides:
//!
//! * the graph type itself ([`Graph`]) with validation and topological
//!   ordering;
//! * reverse-mode [`build_training_graph`] to derive gradients and optimizer
//!   updates from a forward graph;
//! * the two rewrites FastT relies on: data-parallel [`replicate`]
//!   (the paper's start strategy) and [`split_operation`] (Alg. 2's
//!   `SplitOperation` for fine-grained intra-op parallelism).
//!
//! # Examples
//!
//! Build a one-layer training graph and replicate it across two devices:
//!
//! ```
//! use fastt_graph::{build_training_graph, replicate, Graph, OpKind, Operation};
//!
//! let mut fwd = Graph::new();
//! let x = fwd.add_op(Operation::new("x", OpKind::Input, [8, 4]))?;
//! let w = fwd.add_op(Operation::new("w", OpKind::Variable, [4, 2]).with_param_bytes(32))?;
//! let mm = fwd.add_op(Operation::new("mm", OpKind::MatMul, [8, 2]).with_flops(128))?;
//! let loss = fwd.add_op(Operation::new("loss", OpKind::Loss, []))?;
//! fwd.connect(x, mm)?;
//! fwd.connect(w, mm)?;
//! fwd.connect(mm, loss)?;
//!
//! let training = build_training_graph(&fwd)?;
//! let dp = replicate(&training, 2)?;
//! assert!(dp.graph.by_name("agg/apply/w").is_some());
//! # Ok::<(), fastt_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autodiff;
mod dot;
mod error;
mod graph;
mod op;
pub mod rewrite;
mod shape;

pub use autodiff::{build_training_graph, grad_kind, BACKWARD_FLOP_FACTOR};
pub use dot::to_dot;
pub use error::GraphError;
pub use graph::{Edge, EdgeId, Graph, GraphStats};
pub use op::{CollectiveKind, OpId, OpKind, Operation, SplitDim};
pub use rewrite::{
    break_cycles, decompose, decompose_with, replicate, replicate_grouped, replicate_with,
    split_operation, strongly_connected_components, DecomposeOptions, Region, RegionId, RegionKind,
    RegionTree, ReplicaRole, ReplicatedGraph, ReplicationMode, SplitDecision, SplitResult,
    UnrolledGraph,
};
pub use shape::{TensorShape, BYTES_PER_ELEM};
