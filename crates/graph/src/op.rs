//! Operations: the nodes of the computation graph.

use crate::shape::TensorShape;
use std::fmt;

/// Identifier of an operation within one [`Graph`](crate::Graph).
///
/// Ids are dense indices assigned in insertion order; they are only meaningful
/// within the graph that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// A dimension along which an operation may be partitioned into
/// sub-operations (Sec. 5.2 of the paper).
///
/// * `Batch` — fine-grained **data** parallelism inside the operation: input
///   data edges are partitioned, weight edges are broadcast to every sub-op.
/// * `Channel` — fine-grained **model** parallelism: weight edges are
///   partitioned, data edges are broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitDim {
    /// Split along the sample (batch) dimension.
    Batch,
    /// Split along the channel / feature dimension.
    Channel,
}

impl fmt::Display for SplitDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitDim::Batch => write!(f, "batch"),
            SplitDim::Channel => write!(f, "channel"),
        }
    }
}

/// The kind of computation an operation performs.
///
/// Kinds carry the semantics the FastT algorithms care about: which split
/// dimensions (if any) an operation supports, and whether it is
/// compute-bound or memory-bound (the simulator's hardware model uses this
/// to derive execution time from `flops`/bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// Training-data feed; produces the input mini-batch.
    Input,
    /// Trainable parameter storage (weights / biases / embeddings).
    Variable,
    /// 2-D convolution (forward).
    Conv2D,
    /// Gradient of a 2-D convolution (computes both input and filter grads).
    Conv2DBackprop,
    /// Dense matrix multiplication (also used for its own gradients).
    MatMul,
    /// Element-wise rectified linear unit.
    Relu,
    /// Gaussian-error linear unit. Unfused in TF 1.x: a chain of ~8
    /// element-wise kernels, each materializing an intermediate tensor —
    /// the memory hog behind BERT's small maximal batch sizes.
    Gelu,
    /// Max/average pooling.
    Pool,
    /// Batch normalization (not splittable: normalizes across the batch).
    BatchNorm,
    /// Layer normalization.
    LayerNorm,
    /// Softmax / attention-score normalization.
    Softmax,
    /// Element-wise addition (residual connections, bias adds).
    Add,
    /// Concatenation of several tensors (also inserted by the split rewrite).
    Concat,
    /// Partition of one tensor into several (inserted by the split rewrite).
    Split,
    /// Embedding-table lookup.
    Embedding,
    /// One fused LSTM cell step.
    LstmCell,
    /// Fused scaled-dot-product attention block.
    Attention,
    /// Loss computation (the training graph's logical sink).
    Loss,
    /// Generic gradient of a memory-bound op (Relu/Pool/Add/... backward).
    EltwiseGrad,
    /// Cross-replica gradient aggregation (inserted by the replicate rewrite).
    AggregateGradients,
    /// Optimizer update: applies a gradient to a [`OpKind::Variable`].
    ApplyGradient,
    /// Shape-only bookkeeping (reshape / transpose / identity).
    Identity,
}

impl OpKind {
    /// Dimensions along which an operation of this kind may be split
    /// (Sec. 5.2: "Different types of operations have different dimensions to
    /// be split"; BatchNorm is the paper's example of a non-splittable op).
    pub fn split_dims(self) -> &'static [SplitDim] {
        match self {
            OpKind::Conv2D | OpKind::Conv2DBackprop => &[SplitDim::Batch, SplitDim::Channel],
            OpKind::MatMul => &[SplitDim::Batch, SplitDim::Channel],
            OpKind::Attention => &[SplitDim::Batch],
            _ => &[],
        }
    }

    /// Whether execution time is dominated by arithmetic (`true`) or by
    /// memory traffic (`false`). Used by the simulator's hardware model.
    pub fn is_compute_bound(self) -> bool {
        matches!(
            self,
            OpKind::Conv2D
                | OpKind::Conv2DBackprop
                | OpKind::MatMul
                | OpKind::LstmCell
                | OpKind::Attention
        )
    }

    /// Whether this kind represents trainable state.
    pub fn is_variable(self) -> bool {
        matches!(self, OpKind::Variable)
    }

    /// Whether the op is pure graph plumbing inserted by rewrites.
    pub fn is_plumbing(self) -> bool {
        matches!(self, OpKind::Split | OpKind::Concat | OpKind::Identity)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Input => "Input",
            OpKind::Variable => "Variable",
            OpKind::Conv2D => "Conv2D",
            OpKind::Conv2DBackprop => "Conv2DBackprop",
            OpKind::MatMul => "MatMul",
            OpKind::Relu => "Relu",
            OpKind::Gelu => "Gelu",
            OpKind::Pool => "Pool",
            OpKind::BatchNorm => "BatchNorm",
            OpKind::LayerNorm => "LayerNorm",
            OpKind::Softmax => "Softmax",
            OpKind::Add => "Add",
            OpKind::Concat => "Concat",
            OpKind::Split => "Split",
            OpKind::Embedding => "Embedding",
            OpKind::LstmCell => "LstmCell",
            OpKind::Attention => "Attention",
            OpKind::Loss => "Loss",
            OpKind::EltwiseGrad => "EltwiseGrad",
            OpKind::AggregateGradients => "AggregateGradients",
            OpKind::ApplyGradient => "ApplyGradient",
            OpKind::Identity => "Identity",
        };
        f.write_str(s)
    }
}

/// The collective communication pattern an operation's *incoming* edges
/// should be lowered to, instead of independent point-to-point transfers.
///
/// Graph rewrites annotate nodes with a collective (e.g.
/// `ReplicationMode::AllReduce` marks its gradient-aggregation nodes); the
/// communication-plan lowering maps the annotation to the matching
/// [`CommStep`](https://docs.rs/fastt-sim) and the simulator executes it
/// over per-link channel timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring all-reduce over the producers' devices: every participant ends
    /// with the reduced tensor (`2(n−1)` phases of `bytes/n`).
    AllReduce,
    /// One root sends the same tensor to every participant.
    Broadcast,
    /// Ring reduce-scatter: each participant ends with one reduced shard
    /// (`n−1` phases of `bytes/n`).
    ReduceScatter,
    /// Ring all-gather: each participant ends with every shard
    /// (`n−1` phases of `bytes/n`).
    AllGather,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::ReduceScatter => "reduce_scatter",
            CollectiveKind::AllGather => "all_gather",
        };
        f.write_str(s)
    }
}

/// A node of the computation graph.
///
/// The fields are the exact inputs the FastT algorithms and the simulator
/// need: a stable `name` (cost models are keyed by name + device), the
/// [`OpKind`], the output tensor shape, the floating-point work, and the
/// resident parameter bytes (non-zero only for [`OpKind::Variable`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Unique name within the graph, e.g. `"rep0/conv1_1"`.
    pub name: String,
    /// What the operation computes.
    pub kind: OpKind,
    /// Shape of the (single) output tensor.
    pub out_shape: TensorShape,
    /// Floating-point operations performed per execution.
    pub flops: u64,
    /// Bytes of trainable parameters resident on the op's device
    /// (non-zero only for `Variable` ops).
    pub param_bytes: u64,
    /// How this op's incoming edges are communicated: `None` for ordinary
    /// point-to-point transfers, `Some` for a collective pattern over the
    /// producers' devices.
    pub collective: Option<CollectiveKind>,
}

impl Operation {
    /// Creates an operation with no flops and no parameters.
    pub fn new(name: impl Into<String>, kind: OpKind, out_shape: impl Into<TensorShape>) -> Self {
        Operation {
            name: name.into(),
            kind,
            out_shape: out_shape.into(),
            flops: 0,
            param_bytes: 0,
            collective: None,
        }
    }

    /// Builder-style: sets the flop count.
    pub fn with_flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self
    }

    /// Builder-style: sets the resident parameter bytes.
    pub fn with_param_bytes(mut self, bytes: u64) -> Self {
        self.param_bytes = bytes;
        self
    }

    /// Builder-style: marks this op's incoming edges as a collective.
    pub fn with_collective(mut self, kind: CollectiveKind) -> Self {
        self.collective = Some(kind);
        self
    }

    /// Bytes of the output tensor.
    pub fn out_bytes(&self) -> u64 {
        self.out_shape.bytes()
    }

    /// Transient + resident memory attributed to this op when placed on a
    /// device: its output activation plus any resident parameters.
    pub fn mem_bytes(&self) -> u64 {
        self.out_bytes() + self.param_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_dims_per_kind() {
        assert_eq!(
            OpKind::Conv2D.split_dims(),
            &[SplitDim::Batch, SplitDim::Channel]
        );
        assert!(OpKind::BatchNorm.split_dims().is_empty());
        assert!(OpKind::Relu.split_dims().is_empty());
        assert_eq!(OpKind::Attention.split_dims(), &[SplitDim::Batch]);
    }

    #[test]
    fn compute_bound_classification() {
        assert!(OpKind::Conv2D.is_compute_bound());
        assert!(OpKind::MatMul.is_compute_bound());
        assert!(!OpKind::Relu.is_compute_bound());
        assert!(!OpKind::AggregateGradients.is_compute_bound());
    }

    #[test]
    fn operation_memory() {
        let op = Operation::new("w", OpKind::Variable, [64, 64]).with_param_bytes(64 * 64 * 4);
        assert_eq!(op.out_bytes(), 64 * 64 * 4);
        assert_eq!(op.mem_bytes(), 2 * 64 * 64 * 4);
    }

    #[test]
    fn builder_style() {
        let op = Operation::new("c", OpKind::Conv2D, [8, 8]).with_flops(1000);
        assert_eq!(op.flops, 1000);
        assert_eq!(op.param_bytes, 0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(OpId(3).to_string(), "op#3");
        assert_eq!(OpKind::Conv2D.to_string(), "Conv2D");
        assert_eq!(SplitDim::Batch.to_string(), "batch");
    }
}
