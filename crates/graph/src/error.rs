//! Error types for graph construction and validation.

use crate::op::OpId;
use std::error::Error;
use std::fmt;

/// Error produced by graph construction, validation, or rewrites.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An operation with the same name already exists.
    DuplicateName(String),
    /// An edge references an op id outside the graph.
    InvalidOp(OpId),
    /// An edge would connect an op to itself.
    SelfEdge(OpId),
    /// The graph contains a cycle (FastT optimizes DAGs only; Sec. 3).
    Cycle,
    /// A rewrite was asked to act on an op that does not support it.
    NotSplittable {
        /// Name of the offending op.
        op: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A lookup by name failed.
    UnknownName(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateName(n) => write!(f, "duplicate operation name `{n}`"),
            GraphError::InvalidOp(id) => write!(f, "edge references unknown operation {id}"),
            GraphError::SelfEdge(id) => write!(f, "edge connects {id} to itself"),
            GraphError::Cycle => write!(f, "computation graph contains a cycle"),
            GraphError::NotSplittable { op, reason } => {
                write!(f, "operation `{op}` cannot be split: {reason}")
            }
            GraphError::UnknownName(n) => write!(f, "no operation named `{n}`"),
        }
    }
}

impl Error for GraphError {}
