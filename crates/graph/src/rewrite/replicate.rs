//! Data-parallel replication of a training graph.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::op::{CollectiveKind, OpId, OpKind, Operation};
use crate::shape::{TensorShape, BYTES_PER_ELEM};

/// How trainable state is handled across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// TensorFlow-slim in-graph replication (the paper's DP baseline):
    /// a **single** copy of every variable and its optimizer update, read by
    /// all replicas each iteration (weight broadcast) and updated once from
    /// the aggregated gradients (gradient funnel-in). When replicas span
    /// multiple servers, per-server weight caches and local gradient
    /// aggregators keep cross-server traffic at one parameter copy per
    /// direction per iteration (standard replicated-training structure).
    ParameterServer,
    /// Mirrored variables: every replica owns a full copy of every variable;
    /// the aggregated gradient is broadcast back to every replica's update.
    /// (No per-server hierarchy; used by ablations.)
    Mirrored,
    /// Mirrored variables with **collective** gradient aggregation: the
    /// aggregation node is annotated [`CollectiveKind::AllReduce`], so the
    /// communication-plan lowering runs a ring all-reduce over the replicas'
    /// devices (`2(n−1)` phases of `bytes/n`) instead of funneling every
    /// gradient into one parameter server and broadcasting the result back.
    AllReduce,
}

/// What role an op of a replicated graph plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Belongs to one model replica.
    Replica(u32),
    /// Globally shared state: variables, updates, the global aggregation.
    Shared,
    /// Per-server helper shared by that server's replicas: a weight cache
    /// or a local gradient aggregator.
    ServerShared(u16),
}

/// A data-parallel training graph plus per-op replica metadata.
#[derive(Debug, Clone)]
pub struct ReplicatedGraph {
    /// The replicated graph (replica ops named `rep{k}/…`; shared variables
    /// and updates keep their original names; aggregation ops are `agg/…`,
    /// per-server helpers `srv{s}/…`).
    pub graph: Graph,
    /// Role of each op, indexed by `OpId`.
    pub roles: Vec<ReplicaRole>,
    /// Number of replicas.
    pub replicas: u32,
    /// Server group of each replica (all zero on a single server).
    pub groups: Vec<u16>,
    /// The mode the graph was built with.
    pub mode: ReplicationMode,
}

impl ReplicatedGraph {
    /// The replica an op belongs to (`None` for shared/per-server ops).
    pub fn replica_of(&self, op: OpId) -> Option<u32> {
        match self.roles[op.index()] {
            ReplicaRole::Replica(k) => Some(k),
            _ => None,
        }
    }

    /// Ops belonging to replica `k`.
    pub fn replica_ops(&self, k: u32) -> impl Iterator<Item = OpId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(move |(_, r)| **r == ReplicaRole::Replica(k))
            .map(|(i, _)| OpId(i as u32))
    }

    /// Globally shared ops (variables, updates, global aggregation).
    pub fn shared_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == ReplicaRole::Shared)
            .map(|(i, _)| OpId(i as u32))
    }
}

/// Replicates with [`ReplicationMode::ParameterServer`] on a single server —
/// the paper's baseline and FastT's start strategy (Sec. 5.2).
///
/// # Errors
///
/// Returns an error if `training` is not a valid DAG.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn replicate(training: &Graph, n: u32) -> Result<ReplicatedGraph, GraphError> {
    replicate_grouped(
        training,
        &vec![0; n as usize],
        ReplicationMode::ParameterServer,
    )
}

/// Replicates with an explicit mode on a single server.
///
/// # Errors
///
/// Returns an error if `training` is not a valid DAG.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn replicate_with(
    training: &Graph,
    n: u32,
    mode: ReplicationMode,
) -> Result<ReplicatedGraph, GraphError> {
    replicate_grouped(training, &vec![0; n as usize], mode)
}

/// Replicates a training graph with one replica per entry of `groups`,
/// where `groups[k]` is the server hosting replica `k`.
///
/// Every non-shared op is copied per replica as `rep{k}/…`. For every
/// `ApplyGradient` op an `AggregateGradients` op sums the per-replica
/// gradients. Under [`ReplicationMode::ParameterServer`] variables and
/// updates stay shared; replicas on servers other than the variables' home
/// (server of `groups\[0\]`) read weights through a per-server cache
/// (`srv{s}/cache/…`) and aggregate gradients locally (`srv{s}/agg/…`)
/// before crossing the network once.
///
/// # Errors
///
/// Returns an error if `training` is not a valid DAG.
///
/// # Panics
///
/// Panics if `groups` is empty.
pub fn replicate_grouped(
    training: &Graph,
    groups: &[u16],
    mode: ReplicationMode,
) -> Result<ReplicatedGraph, GraphError> {
    assert!(!groups.is_empty(), "need at least one replica");
    let n = groups.len() as u32;
    training.validate()?;

    let ps_mode = mode == ReplicationMode::ParameterServer;
    let home = groups[0];
    let remote_servers: Vec<u16> = {
        let mut v: Vec<u16> = groups.iter().copied().filter(|&s| s != home).collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    let shared = |op: &Operation| -> bool {
        ps_mode && matches!(op.kind, OpKind::Variable | OpKind::ApplyGradient)
    };

    let mut g = Graph::new();
    let mut roles = Vec::new();

    // Shared ops first (single copy, original names).
    let mut shared_id: Vec<Option<OpId>> = vec![None; training.op_count()];
    for (oid, op) in training.iter_ops() {
        if shared(op) {
            let nid = g.add_op(op.clone())?;
            shared_id[oid.index()] = Some(nid);
            roles.push(ReplicaRole::Shared);
        }
    }

    // Per-server weight caches for remote servers: one Identity per
    // (server, variable), fed once from the shared variable.
    // cache_id[server][var old index]
    let mut cache_id: std::collections::HashMap<(u16, usize), OpId> =
        std::collections::HashMap::new();
    if ps_mode && !remote_servers.is_empty() {
        for (vid, vop) in training.iter_ops() {
            if !vop.kind.is_variable() {
                continue;
            }
            for &s in &remote_servers {
                let cache = Operation::new(
                    format!("srv{s}/cache/{}", vop.name),
                    OpKind::Identity,
                    vop.out_shape.clone(),
                )
                .with_flops(vop.param_bytes / BYTES_PER_ELEM);
                let cid = g.add_op(cache)?;
                roles.push(ReplicaRole::ServerShared(s));
                g.connect_bytes(
                    shared_id[vid.index()].expect("var shared"),
                    cid,
                    vop.param_bytes,
                )?;
                cache_id.insert((s, vid.index()), cid);
            }
        }
    }

    // Per-replica copies of everything else.
    let mut id_map: Vec<Vec<OpId>> = Vec::with_capacity(n as usize);
    for (k, _) in groups.iter().enumerate() {
        let mut map_k = Vec::with_capacity(training.op_count());
        for (oid, op) in training.iter_ops() {
            if let Some(sid) = shared_id[oid.index()] {
                map_k.push(sid);
                continue;
            }
            let mut copy = op.clone();
            copy.name = format!("rep{k}/{}", op.name);
            let nid = g.add_op(copy)?;
            map_k.push(nid);
            roles.push(ReplicaRole::Replica(k as u32));
        }
        id_map.push(map_k);
    }

    // Copy edges. Gradient edges into ApplyGradient ops are replaced by the
    // aggregation path when n > 1; variable reads from remote servers go
    // through that server's cache.
    let mut done_shared_edges = std::collections::HashSet::new();
    for e in training.iter_edges() {
        let drop_for_agg = n > 1
            && training.op_ref(e.dst).kind == OpKind::ApplyGradient
            && !training.op_ref(e.src).kind.is_variable();
        if drop_for_agg {
            continue;
        }
        let both_shared = shared(training.op_ref(e.src)) && shared(training.op_ref(e.dst));
        if both_shared {
            if done_shared_edges.insert((e.src, e.dst)) {
                g.connect_bytes(id_map[0][e.src.index()], id_map[0][e.dst.index()], e.bytes)?;
            }
            continue;
        }
        let src_is_shared_var =
            shared(training.op_ref(e.src)) && training.op_ref(e.src).kind.is_variable();
        for (k, map_k) in id_map.iter().enumerate() {
            let src = if src_is_shared_var {
                // read through the server-local cache when one exists
                cache_id
                    .get(&(groups[k], e.src.index()))
                    .copied()
                    .unwrap_or(map_k[e.src.index()])
            } else {
                map_k[e.src.index()]
            };
            g.connect_bytes(src, map_k[e.dst.index()], e.bytes)?;
        }
    }

    // Copy colocation groups (shared members deduplicate naturally).
    for grp in training.colocation_groups() {
        for map_k in &id_map {
            let mut members: Vec<OpId> = Vec::new();
            for o in grp {
                let m = map_k[o.index()];
                if !members.contains(&m) {
                    members.push(m);
                }
            }
            if members.len() > 1 {
                g.colocate(&members);
            }
        }
    }

    // Insert aggregation ops: per-server local aggregators feeding one
    // global aggregator (the hierarchy collapses on a single server).
    if n > 1 {
        for (aid, aop) in training.iter_ops() {
            if aop.kind != OpKind::ApplyGradient {
                continue;
            }
            let grad_edges: Vec<(OpId, u64)> = training
                .in_edges(aid)
                .filter(|e| !training.op_ref(e.src).kind.is_variable())
                .map(|e| (e.src, e.bytes))
                .collect();
            if grad_edges.is_empty() {
                continue;
            }
            let grad_bytes: u64 = grad_edges.iter().map(|(_, b)| *b).max().unwrap_or(0);
            let elems = (grad_bytes / BYTES_PER_ELEM).max(1);

            let mut agg = Operation::new(
                format!("agg/{}", aop.name),
                OpKind::AggregateGradients,
                TensorShape::new([elems]),
            )
            .with_flops(elems * n as u64);
            if mode == ReplicationMode::AllReduce {
                agg = agg.with_collective(CollectiveKind::AllReduce);
            }
            let agg_id = g.add_op(agg)?;
            roles.push(ReplicaRole::Shared);

            // local aggregators for remote servers (PS mode only)
            let mut local_agg: std::collections::HashMap<u16, OpId> =
                std::collections::HashMap::new();
            if ps_mode {
                for &s in &remote_servers {
                    let members = groups.iter().filter(|&&x| x == s).count() as u64;
                    let la = Operation::new(
                        format!("srv{s}/agg/{}", aop.name),
                        OpKind::AggregateGradients,
                        TensorShape::new([elems]),
                    )
                    .with_flops(elems * members);
                    let lid = g.add_op(la)?;
                    roles.push(ReplicaRole::ServerShared(s));
                    g.connect_bytes(lid, agg_id, grad_bytes)?;
                    local_agg.insert(s, lid);
                }
            }

            for (k, map_k) in id_map.iter().enumerate() {
                let sink = local_agg.get(&groups[k]).copied().unwrap_or(agg_id);
                for &(src, bytes) in &grad_edges {
                    g.connect_bytes(map_k[src.index()], sink, bytes)?;
                }
            }

            match mode {
                ReplicationMode::ParameterServer => {
                    let apply = id_map[0][aid.index()];
                    g.connect_bytes(agg_id, apply, grad_bytes)?;
                    g.colocate(&[agg_id, apply]);
                }
                ReplicationMode::Mirrored | ReplicationMode::AllReduce => {
                    for map_k in &id_map {
                        g.connect_bytes(agg_id, map_k[aid.index()], grad_bytes)?;
                    }
                }
            }
        }
    }

    g.validate()?;
    Ok(ReplicatedGraph {
        graph: g,
        roles,
        replicas: n,
        groups: groups.to_vec(),
        mode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autodiff::build_training_graph;

    fn tiny_training() -> Graph {
        let mut g = Graph::new();
        let x = g
            .add_op(Operation::new("x", OpKind::Input, [8, 4]))
            .unwrap();
        let w = g
            .add_op(Operation::new("w", OpKind::Variable, [4, 2]).with_param_bytes(32))
            .unwrap();
        let mm = g
            .add_op(Operation::new("mm", OpKind::MatMul, [8, 2]).with_flops(128))
            .unwrap();
        let loss = g.add_op(Operation::new("loss", OpKind::Loss, [])).unwrap();
        g.connect(x, mm).unwrap();
        g.connect(w, mm).unwrap();
        g.connect(mm, loss).unwrap();
        build_training_graph(&g).unwrap()
    }

    #[test]
    fn single_replica_has_no_aggregation() {
        let t = tiny_training();
        let r = replicate(&t, 1).unwrap();
        assert_eq!(r.graph.op_count(), t.op_count());
        assert!(r.graph.by_name("agg/apply/w").is_none());
        assert!(r.graph.by_name("rep0/mm").is_some());
    }

    #[test]
    fn ps_mode_keeps_single_variable_copy() {
        let t = tiny_training();
        let r = replicate(&t, 4).unwrap();
        assert!(r.graph.by_name("w").is_some());
        assert!(r.graph.by_name("apply/w").is_some());
        assert!(r.graph.by_name("rep0/w").is_none());
        assert!(r.graph.by_name("rep0/apply/w").is_none());
        let w = r.graph.by_name("w").unwrap();
        // 4 replica matmuls + the update read the variable
        assert_eq!(r.graph.succs(w).count(), 4 + 1);
    }

    #[test]
    fn ps_mode_funnels_gradients_once() {
        let t = tiny_training();
        let r = replicate(&t, 4).unwrap();
        let agg = r.graph.by_name("agg/apply/w").expect("aggregation op");
        assert_eq!(r.graph.preds(agg).count(), 4);
        assert_eq!(r.graph.succs(agg).count(), 1);
        assert_eq!(r.roles[agg.index()], ReplicaRole::Shared);
        let apply = r.graph.by_name("apply/w").unwrap();
        let grp = r.graph.colocation_group(agg).expect("colocated");
        assert!(grp.contains(&apply));
    }

    #[test]
    fn mirrored_mode_replicates_variables() {
        let t = tiny_training();
        let r = replicate_with(&t, 2, ReplicationMode::Mirrored).unwrap();
        assert!(r.graph.by_name("rep0/w").is_some());
        assert!(r.graph.by_name("rep1/w").is_some());
        let agg = r.graph.by_name("agg/apply/w").unwrap();
        assert_eq!(r.graph.succs(agg).count(), 2);
    }

    #[test]
    fn allreduce_mode_annotates_aggregation_as_collective() {
        let t = tiny_training();
        let r = replicate_with(&t, 4, ReplicationMode::AllReduce).unwrap();
        // mirrored-style state: every replica owns its variables and update
        assert!(r.graph.by_name("rep0/w").is_some());
        assert!(r.graph.by_name("rep3/apply/w").is_some());
        assert!(r.graph.by_name("w").is_none());
        // the aggregation node carries the collective annotation and fans
        // out to every replica's update
        let agg = r.graph.by_name("agg/apply/w").unwrap();
        assert_eq!(
            r.graph.op_ref(agg).collective,
            Some(CollectiveKind::AllReduce)
        );
        assert_eq!(r.graph.preds(agg).count(), 4);
        assert_eq!(r.graph.succs(agg).count(), 4);
        // PS and Mirrored graphs stay annotation-free
        let ps = replicate(&t, 4).unwrap();
        let ps_agg = ps.graph.by_name("agg/apply/w").unwrap();
        assert_eq!(ps.graph.op_ref(ps_agg).collective, None);
        // ...and the annotation is fingerprint-relevant
        let m = replicate_with(&t, 4, ReplicationMode::Mirrored).unwrap();
        assert_ne!(m.graph.structure_hash(), r.graph.structure_hash());
    }

    #[test]
    fn replica_metadata_is_consistent() {
        let t = tiny_training();
        let r = replicate(&t, 2).unwrap();
        assert_eq!(r.replicas, 2);
        let n0 = r.replica_ops(0).count();
        let n1 = r.replica_ops(1).count();
        assert_eq!(n0, n1);
        assert_eq!(r.shared_ops().count(), 3); // variable + apply + agg
        assert_eq!(r.graph.op_count(), n0 + n1 + 3);
    }

    #[test]
    fn two_server_groups_get_caches_and_local_aggs() {
        let t = tiny_training();
        let r = replicate_grouped(&t, &[0, 0, 1, 1], ReplicationMode::ParameterServer).unwrap();
        // remote server 1 has a weight cache fed once from the variable
        let cache = r.graph.by_name("srv1/cache/w").expect("weight cache");
        assert_eq!(r.roles[cache.index()], ReplicaRole::ServerShared(1));
        let w = r.graph.by_name("w").unwrap();
        assert!(r.graph.succs(w).any(|s| s == cache));
        // server-1 replicas read the cache, not the variable
        let mm2 = r.graph.by_name("rep2/mm").unwrap();
        assert!(r.graph.preds(mm2).any(|p| p == cache));
        assert!(!r.graph.preds(mm2).any(|p| p == w));
        // home-server replicas read the variable directly
        let mm0 = r.graph.by_name("rep0/mm").unwrap();
        assert!(r.graph.preds(mm0).any(|p| p == w));
        // server-1 grads flow through the local aggregator
        let lagg = r.graph.by_name("srv1/agg/apply/w").expect("local agg");
        let agg = r.graph.by_name("agg/apply/w").unwrap();
        assert!(r.graph.succs(lagg).any(|s| s == agg));
        assert_eq!(r.graph.preds(lagg).count(), 2);
        // global agg: 2 home grads + 1 local agg
        assert_eq!(r.graph.preds(agg).count(), 3);
        r.graph.validate().unwrap();
    }

    #[test]
    fn single_server_groups_have_no_hierarchy() {
        let t = tiny_training();
        let r = replicate_grouped(&t, &[0, 0, 0], ReplicationMode::ParameterServer).unwrap();
        assert!(r.graph.by_name("srv0/cache/w").is_none());
        assert!(r.graph.by_name("srv0/agg/apply/w").is_none());
    }

    #[test]
    fn direct_grad_edges_removed_when_replicated() {
        let t = tiny_training();
        let r = replicate(&t, 2).unwrap();
        let apply = r.graph.by_name("apply/w").unwrap();
        let grad0 = r.graph.by_name("rep0/grad/mm").unwrap();
        assert!(!r.graph.preds(apply).any(|p| p == grad0));
        let agg = r.graph.by_name("agg/apply/w").unwrap();
        assert!(r.graph.preds(apply).any(|p| p == agg));
    }

    #[test]
    fn variable_apply_colocation_survives() {
        let t = tiny_training();
        let r = replicate(&t, 2).unwrap();
        let w = r.graph.by_name("w").unwrap();
        let a = r.graph.by_name("apply/w").unwrap();
        let grp = r.graph.colocation_group(w).expect("group");
        assert!(grp.contains(&a));
    }

    #[test]
    fn replicated_graph_is_valid_dag() {
        let t = tiny_training();
        for n in [1usize, 2, 3, 8] {
            for mode in [
                ReplicationMode::ParameterServer,
                ReplicationMode::Mirrored,
                ReplicationMode::AllReduce,
            ] {
                let groups: Vec<u16> = (0..n).map(|k| (k % 2) as u16).collect();
                let r = replicate_grouped(&t, &groups, mode).unwrap();
                r.graph.validate().unwrap();
            }
        }
    }

    #[test]
    fn aggregation_edge_bytes_match_param_bytes() {
        let t = tiny_training();
        let r = replicate(&t, 2).unwrap();
        let agg = r.graph.by_name("agg/apply/w").unwrap();
        for e in r.graph.in_edges(agg) {
            assert_eq!(e.bytes, 32);
        }
        for e in r.graph.out_edges(agg) {
            assert_eq!(e.bytes, 32);
        }
    }

    #[test]
    fn weight_broadcast_edges_carry_param_bytes() {
        let t = tiny_training();
        let r = replicate(&t, 2).unwrap();
        let w = r.graph.by_name("w").unwrap();
        let mm1 = r.graph.by_name("rep1/mm").unwrap();
        let e = r
            .graph
            .out_edges(w)
            .find(|e| e.dst == mm1)
            .expect("broadcast edge");
        assert_eq!(e.bytes, 32);
    }
}
