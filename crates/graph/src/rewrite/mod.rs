//! Graph rewrites: semantics-preserving transformations of training graphs.
//!
//! Two rewrites matter to FastT:
//!
//! * [`replicate`] builds the in-graph data-parallel training graph (the
//!   paper's start strategy when the model fits on one GPU, Sec. 5.2);
//! * [`split_operation`] implements Alg. 2's `SplitOperation`: partitioning a
//!   single operation into `n` sub-operations along a parallelizable
//!   dimension, inserting `Split`/`Concat` plumbing nodes.

mod decompose;
mod replicate;
mod split;
mod unroll;

pub use decompose::{
    decompose, decompose_with, DecomposeOptions, Region, RegionId, RegionKind, RegionTree,
};
pub use replicate::{
    replicate, replicate_grouped, replicate_with, ReplicaRole, ReplicatedGraph, ReplicationMode,
};
pub use split::{split_operation, SplitDecision, SplitResult};
pub use unroll::{break_cycles, strongly_connected_components, UnrolledGraph};
