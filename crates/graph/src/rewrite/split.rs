//! `SplitOperation` (Alg. 2 of the paper): partition one operation into `n`
//! sub-operations along a parallelizable dimension.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::op::{OpId, OpKind, Operation, SplitDim};

/// Outcome of [`split_operation`]: the rewritten graph plus id bookkeeping.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// The rewritten graph (the original op removed; sub-ops, `Split` and
    /// `Concat` plumbing inserted).
    pub graph: Graph,
    /// The `n` sub-operations, in partition order.
    pub parts: Vec<OpId>,
    /// The concat node that reassembles the output.
    pub concat: OpId,
    /// Mapping from old op ids to new ids (`None` for the removed op).
    pub id_map: Vec<Option<OpId>>,
}

/// A recorded split decision, as emitted in the paper's "operation split
/// list" output (Sec. 3: name, partition dimension, number of partitions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitDecision {
    /// Name of the split operation.
    pub op_name: String,
    /// Dimension it was split along.
    pub dim: SplitDim,
    /// Number of partitions.
    pub parts: u32,
}

impl std::fmt::Display for SplitDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} / {} x{}", self.op_name, self.dim, self.parts)
    }
}

/// Which shape axis a [`SplitDim`] refers to for an output shape of rank `r`.
fn axis(dim: SplitDim, rank: usize) -> usize {
    match dim {
        SplitDim::Batch => 0,
        SplitDim::Channel => rank.saturating_sub(1),
    }
}

/// Splits `target` into `n` sub-operations along `dim`, following the
/// paper's `SplitOperation` (Alg. 2, lines 16–30):
///
/// * `n` sub-ops `name.part{i}` are created, each with `1/n` of the flops;
/// * for each predecessor edge that is *partitioned* under `dim`, a `Split`
///   node is inserted and connected to the `n` partitions;
/// * predecessor edges that are *not* partitioned (e.g. weights under a batch
///   split) are broadcast: each sub-op receives the full tensor;
/// * a `Concat` node reassembles the sub-outputs and feeds every successor;
/// * the original op is removed.
///
/// Splitting along [`SplitDim::Batch`] is fine-grained data parallelism
/// (data edges partitioned, weight edges broadcast); splitting along
/// [`SplitDim::Channel`] is fine-grained model parallelism (weight edges
/// partitioned, data edges broadcast). An edge counts as a *weight* edge when
/// its producer is a [`OpKind::Variable`].
///
/// # Errors
///
/// * [`GraphError::NotSplittable`] if the op kind does not support `dim`,
///   `n < 2`, or the output shape is not divisible `n` ways along `dim`.
/// * [`GraphError::InvalidOp`] if `target` is not in the graph.
pub fn split_operation(
    g: &Graph,
    target: OpId,
    dim: SplitDim,
    n: u32,
) -> Result<SplitResult, GraphError> {
    let op = g.op(target).ok_or(GraphError::InvalidOp(target))?.clone();
    if !op.kind.split_dims().contains(&dim) {
        return Err(GraphError::NotSplittable {
            op: op.name.clone(),
            reason: format!("kind {} has no {dim} dimension", op.kind),
        });
    }
    if n < 2 {
        return Err(GraphError::NotSplittable {
            op: op.name.clone(),
            reason: format!("split count {n} must be at least 2"),
        });
    }
    let ax = axis(dim, op.out_shape.rank());
    if !op.out_shape.divisible(ax, n as u64) {
        return Err(GraphError::NotSplittable {
            op: op.name.clone(),
            reason: format!(
                "output shape {} not divisible by {n} along {dim}",
                op.out_shape
            ),
        });
    }

    // Copy every op except the target.
    let mut out = Graph::new();
    let mut id_map: Vec<Option<OpId>> = vec![None; g.op_count()];
    for (oid, o) in g.iter_ops() {
        if oid == target {
            continue;
        }
        id_map[oid.index()] = Some(out.add_op(o.clone())?);
    }

    // Create the sub-operations.
    let part_shape = op.out_shape.split_dim(ax, n as u64);
    let mut parts = Vec::with_capacity(n as usize);
    for i in 0..n {
        let sub = Operation::new(format!("{}.part{i}", op.name), op.kind, part_shape.clone())
            .with_flops(op.flops / n as u64);
        parts.push(out.add_op(sub)?);
    }

    // Copy all edges not touching the target.
    for e in g.iter_edges() {
        if e.src == target || e.dst == target {
            continue;
        }
        out.connect_bytes(
            id_map[e.src.index()].expect("src survives"),
            id_map[e.dst.index()].expect("dst survives"),
            e.bytes,
        )?;
    }

    // Rewire predecessors. Under a batch split, weight edges (from Variables)
    // are broadcast; under a channel split, data edges are broadcast.
    for (j, e) in g.in_edges(target).enumerate() {
        let pred_new = id_map[e.src.index()].expect("pred survives");
        let is_weight = g.op_ref(e.src).kind.is_variable();
        let partitioned = match dim {
            SplitDim::Batch => !is_weight,
            SplitDim::Channel => is_weight,
        };
        if partitioned {
            let split_node = Operation::new(
                format!("{}.split{j}", op.name),
                OpKind::Split,
                // the split node momentarily holds the full tensor
                crate::shape::TensorShape::new([e.bytes / crate::shape::BYTES_PER_ELEM]),
            )
            .with_flops(e.bytes / crate::shape::BYTES_PER_ELEM);
            let sid = out.add_op(split_node)?;
            out.connect_bytes(pred_new, sid, e.bytes)?;
            let per_part = (e.bytes / n as u64).max(1);
            for &p in &parts {
                out.connect_bytes(sid, p, per_part)?;
            }
        } else {
            for &p in &parts {
                out.connect_bytes(pred_new, p, e.bytes)?;
            }
        }
    }

    // Rewire successors through a concat node.
    let concat = {
        let cop = Operation::new(
            format!("{}.concat", op.name),
            OpKind::Concat,
            op.out_shape.clone(),
        )
        .with_flops(op.out_shape.elems());
        out.add_op(cop)?
    };
    let per_part_out = (op.out_bytes() / n as u64).max(1);
    for &p in &parts {
        out.connect_bytes(p, concat, per_part_out)?;
    }
    for e in g.out_edges(target) {
        let succ_new = id_map[e.dst.index()].expect("succ survives");
        out.connect_bytes(concat, succ_new, e.bytes)?;
    }

    // Preserve colocation groups among surviving ops.
    for grp in g.colocation_groups() {
        let members: Vec<OpId> = grp.iter().filter_map(|o| id_map[o.index()]).collect();
        if members.len() > 1 {
            out.colocate(&members);
        }
    }

    out.validate()?;
    Ok(SplitResult {
        graph: out,
        parts,
        concat,
        id_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x(Input) + w(Variable) -> conv -> relu
    fn conv_graph() -> (Graph, OpId) {
        let mut g = Graph::new();
        let x = g
            .add_op(Operation::new("x", OpKind::Input, [32, 16, 16, 8]))
            .unwrap();
        let w = g
            .add_op(
                Operation::new("w", OpKind::Variable, [3, 3, 8, 8])
                    .with_param_bytes(3 * 3 * 8 * 8 * 4),
            )
            .unwrap();
        let c = g
            .add_op(Operation::new("conv", OpKind::Conv2D, [32, 16, 16, 8]).with_flops(1_000_000))
            .unwrap();
        let r = g
            .add_op(Operation::new("relu", OpKind::Relu, [32, 16, 16, 8]))
            .unwrap();
        g.connect(x, c).unwrap();
        g.connect(w, c).unwrap();
        g.connect(c, r).unwrap();
        (g, c)
    }

    #[test]
    fn batch_split_partitions_data_broadcasts_weights() {
        let (g, c) = conv_graph();
        let res = split_operation(&g, c, SplitDim::Batch, 4).unwrap();
        let ng = &res.graph;
        assert_eq!(res.parts.len(), 4);
        // the data edge goes through a split node
        let split0 = ng.by_name("conv.split0").expect("split node for data edge");
        let x = ng.by_name("x").unwrap();
        assert!(ng.succs(x).any(|s| s == split0));
        // each part receives the full weight tensor directly (broadcast)
        let w = ng.by_name("w").unwrap();
        let w_out: Vec<_> = ng.out_edges(w).collect();
        assert_eq!(w_out.len(), 4);
        for e in &w_out {
            assert_eq!(e.bytes, 3 * 3 * 8 * 8 * 4);
        }
        // per-part data edges are a quarter of the input
        for e in ng.out_edges(split0) {
            assert_eq!(e.bytes, (32u64 * 16 * 16 * 8 * 4) / 4);
        }
    }

    #[test]
    fn channel_split_partitions_weights_broadcasts_data() {
        let (g, c) = conv_graph();
        let res = split_operation(&g, c, SplitDim::Channel, 2).unwrap();
        let ng = &res.graph;
        // the weight edge goes through a split node (it is in-edge index 1)
        let wsplit = ng
            .by_name("conv.split1")
            .expect("split node for weight edge");
        let w = ng.by_name("w").unwrap();
        assert!(ng.succs(w).any(|s| s == wsplit));
        // data edges broadcast at full size
        let x = ng.by_name("x").unwrap();
        let x_out: Vec<_> = ng.out_edges(x).collect();
        assert_eq!(x_out.len(), 2);
        for e in &x_out {
            assert_eq!(e.bytes, 32 * 16 * 16 * 8 * 4);
        }
    }

    #[test]
    fn concat_feeds_successors_with_original_bytes() {
        let (g, c) = conv_graph();
        let orig_out_bytes = g.op_ref(c).out_bytes();
        let res = split_operation(&g, c, SplitDim::Batch, 2).unwrap();
        let ng = &res.graph;
        let relu = ng.by_name("relu").unwrap();
        let e = ng.in_edges(relu).next().unwrap();
        assert_eq!(e.src, res.concat);
        assert_eq!(e.bytes, orig_out_bytes);
    }

    #[test]
    fn flops_divided_across_parts() {
        let (g, c) = conv_graph();
        let res = split_operation(&g, c, SplitDim::Batch, 4).unwrap();
        for &p in &res.parts {
            assert_eq!(res.graph.op_ref(p).flops, 250_000);
        }
    }

    #[test]
    fn original_op_removed() {
        let (g, c) = conv_graph();
        let res = split_operation(&g, c, SplitDim::Batch, 2).unwrap();
        assert!(res.graph.by_name("conv").is_none());
        assert_eq!(res.id_map[c.index()], None);
    }

    #[test]
    fn not_splittable_kinds_rejected() {
        let mut g = Graph::new();
        let a = g
            .add_op(Operation::new("bn", OpKind::BatchNorm, [32, 8]))
            .unwrap();
        let err = split_operation(&g, a, SplitDim::Batch, 2).unwrap_err();
        assert!(matches!(err, GraphError::NotSplittable { .. }));
    }

    #[test]
    fn indivisible_shape_rejected() {
        let mut g = Graph::new();
        let c = g
            .add_op(Operation::new("c", OpKind::Conv2D, [3, 8, 8, 4]).with_flops(100))
            .unwrap();
        let err = split_operation(&g, c, SplitDim::Batch, 2).unwrap_err();
        assert!(matches!(err, GraphError::NotSplittable { .. }));
    }

    #[test]
    fn split_count_must_be_at_least_two() {
        let (g, c) = conv_graph();
        assert!(split_operation(&g, c, SplitDim::Batch, 1).is_err());
    }

    #[test]
    fn result_graph_is_valid() {
        let (g, c) = conv_graph();
        let res = split_operation(&g, c, SplitDim::Batch, 4).unwrap();
        res.graph.validate().unwrap();
        // op count: 3 survivors + 4 parts + 1 split + 1 concat
        assert_eq!(res.graph.op_count(), 3 + 4 + 1 + 1);
    }

    #[test]
    fn double_split_two_ops_composes() {
        let (g, c) = conv_graph();
        let res1 = split_operation(&g, c, SplitDim::Batch, 2).unwrap();
        // split the relu's upstream concat? relu isn't splittable; split a part instead
        let part0 = res1.parts[0];
        let res2 = split_operation(&res1.graph, part0, SplitDim::Batch, 2).unwrap();
        res2.graph.validate().unwrap();
        assert!(res2.graph.by_name("conv.part0.part0").is_some());
        assert!(res2.graph.by_name("conv.part0.part1").is_some());
    }
}
