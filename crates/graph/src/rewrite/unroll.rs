//! Cycle breaking by loop unrolling — the paper's stated future work
//! (Sec. 8): "some new features … allow cycles in computation graphs, such
//! as dynamic RNN layers. Currently, FastT does not handle graphs with
//! cycles. A potential solution is to break the cycles and reorganize the
//! graph to be a DAG."
//!
//! [`break_cycles`] implements that solution: the strongly connected
//! components with cycles (the loop bodies) are replicated once per
//! iteration, back edges are redirected from iteration `t` to `t+1`, and
//! the result is a plain DAG every FastT algorithm already handles.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::op::OpId;

/// Result of [`break_cycles`].
#[derive(Debug, Clone)]
pub struct UnrolledGraph {
    /// The acyclic unrolled graph (loop-body ops named `iter{t}/…`).
    pub graph: Graph,
    /// How many iterations each loop body was unrolled.
    pub iterations: u32,
    /// Ops of the original graph that were part of a cycle.
    pub loop_ops: Vec<OpId>,
}

/// Tarjan's strongly-connected-components algorithm (iterative).
/// Returns the SCC index of each node.
pub fn strongly_connected_components(graph: &Graph) -> Vec<usize> {
    let n = graph.op_count();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // explicit DFS stack of (node, child-iterator position)
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs: Vec<usize> = graph.succs(OpId(v as u32)).map(|s| s.index()).collect();
            if *ci < succs.len() {
                let w = succs[*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    // v roots an SCC
                    loop {
                        let w = stack.pop().expect("stack tracks scc membership");
                        on_stack[w] = false;
                        scc[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
                let done = v;
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[done]);
                }
            }
        }
    }
    scc
}

/// Breaks every cycle in `graph` by unrolling its loop bodies `iterations`
/// times, producing a DAG.
///
/// Rules:
///
/// * ops in a non-trivial SCC (or with a self-loop) are the *loop body*;
///   they are copied per iteration as `iter{t}/name`;
/// * acyclic ops are copied once, keeping their names;
/// * forward edges inside the body are replicated per iteration;
/// * back edges (edges inside the body that close a cycle) connect
///   iteration `t` to iteration `t+1` and are dropped from the last
///   iteration;
/// * edges entering the body connect to **every** iteration when the source
///   is a `Variable` (loop-invariant weights) and to iteration 0 otherwise
///   (initial state);
/// * edges leaving the body originate from the **last** iteration.
///
/// # Errors
///
/// Propagates graph-construction errors (duplicate names can arise if the
/// input already uses `iter{t}/` names).
///
/// # Panics
///
/// Panics if `iterations == 0`.
pub fn break_cycles(graph: &Graph, iterations: u32) -> Result<UnrolledGraph, GraphError> {
    assert!(iterations > 0, "need at least one iteration");
    let scc = strongly_connected_components(graph);

    // SCC sizes and self-loops decide loop membership.
    let mut scc_size = std::collections::HashMap::new();
    for &s in &scc {
        *scc_size.entry(s).or_insert(0usize) += 1;
    }
    let mut in_loop = vec![false; graph.op_count()];
    for (oid, _) in graph.iter_ops() {
        let i = oid.index();
        in_loop[i] = scc_size[&scc[i]] > 1
            || graph.succs(oid).any(|s| s == oid)
            || graph.out_edges(oid).any(|e| e.dst == oid);
    }
    let loop_ops: Vec<OpId> = graph.op_ids().filter(|o| in_loop[o.index()]).collect();

    // A back edge stays inside one SCC and goes "backwards" in the order
    // Tarjan assigned (smaller DFS index target) — for unrolling purposes,
    // any intra-SCC edge whose removal set must break cycles. We classify
    // via DFS indices: recompute a DFS preorder and call an intra-loop edge
    // a back edge when dst's preorder ≤ src's preorder.
    let mut pre = vec![usize::MAX; graph.op_count()];
    let mut counter = 0usize;
    for start in graph.op_ids() {
        if pre[start.index()] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            if pre[v.index()] != usize::MAX {
                continue;
            }
            pre[v.index()] = counter;
            counter += 1;
            for s in graph.succs(v) {
                if pre[s.index()] == usize::MAX {
                    stack.push(s);
                }
            }
        }
    }
    let is_back = |src: OpId, dst: OpId| -> bool {
        in_loop[src.index()]
            && in_loop[dst.index()]
            && scc[src.index()] == scc[dst.index()]
            && pre[dst.index()] <= pre[src.index()]
    };

    // Build the unrolled graph.
    let mut g = Graph::new();
    let mut once_id: Vec<Option<OpId>> = vec![None; graph.op_count()];
    let mut iter_id: Vec<Vec<OpId>> = vec![Vec::new(); graph.op_count()];
    for (oid, op) in graph.iter_ops() {
        if in_loop[oid.index()] {
            for t in 0..iterations {
                let mut copy = op.clone();
                copy.name = format!("iter{t}/{}", op.name);
                iter_id[oid.index()].push(g.add_op(copy)?);
            }
        } else {
            once_id[oid.index()] = Some(g.add_op(op.clone())?);
        }
    }

    for e in graph.iter_edges() {
        let (si, di) = (e.src.index(), e.dst.index());
        match (in_loop[si], in_loop[di]) {
            (false, false) => {
                g.connect_bytes(once_id[si].unwrap(), once_id[di].unwrap(), e.bytes)?;
            }
            (false, true) => {
                if graph.op_ref(e.src).kind.is_variable() {
                    for &dst in &iter_id[di] {
                        g.connect_bytes(once_id[si].unwrap(), dst, e.bytes)?;
                    }
                } else {
                    g.connect_bytes(once_id[si].unwrap(), iter_id[di][0], e.bytes)?;
                }
            }
            (true, false) => {
                g.connect_bytes(
                    iter_id[si][iterations as usize - 1],
                    once_id[di].unwrap(),
                    e.bytes,
                )?;
            }
            (true, true) => {
                if is_back(e.src, e.dst) {
                    for t in 0..iterations as usize - 1 {
                        g.connect_bytes(iter_id[si][t], iter_id[di][t + 1], e.bytes)?;
                    }
                } else {
                    for (&src, &dst) in iter_id[si].iter().zip(&iter_id[di]) {
                        g.connect_bytes(src, dst, e.bytes)?;
                    }
                }
            }
        }
    }

    g.validate()?;
    Ok(UnrolledGraph {
        graph: g,
        iterations,
        loop_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, Operation};

    /// input -> cell <-> state (cycle), cell -> out; weights -> cell.
    fn rnn_like() -> Graph {
        let mut g = Graph::new();
        let x = g.add_op(Operation::new("x", OpKind::Input, [8])).unwrap();
        let w = g
            .add_op(Operation::new("w", OpKind::Variable, [64]).with_param_bytes(256))
            .unwrap();
        let cell = g
            .add_op(Operation::new("cell", OpKind::LstmCell, [8]).with_flops(1000))
            .unwrap();
        let state = g
            .add_op(Operation::new("state", OpKind::Identity, [8]))
            .unwrap();
        let out = g.add_op(Operation::new("out", OpKind::Loss, [])).unwrap();
        g.connect(x, cell).unwrap();
        g.connect(w, cell).unwrap();
        g.connect(cell, state).unwrap();
        g.connect(state, cell).unwrap(); // back edge: the recurrence
        g.connect(cell, out).unwrap();
        g
    }

    #[test]
    fn scc_identifies_the_cycle() {
        let g = rnn_like();
        let scc = strongly_connected_components(&g);
        let cell = g.by_name("cell").unwrap().index();
        let state = g.by_name("state").unwrap().index();
        let x = g.by_name("x").unwrap().index();
        assert_eq!(scc[cell], scc[state], "cycle members share an SCC");
        assert_ne!(scc[x], scc[cell]);
    }

    #[test]
    fn unrolling_produces_a_dag() {
        let g = rnn_like();
        assert!(g.validate().is_err(), "input really is cyclic");
        let u = break_cycles(&g, 4).unwrap();
        u.graph.validate().unwrap();
        assert_eq!(u.iterations, 4);
        assert_eq!(u.loop_ops.len(), 2); // cell + state
    }

    #[test]
    fn recurrence_connects_consecutive_iterations() {
        let g = rnn_like();
        let u = break_cycles(&g, 3).unwrap();
        let s0 = u.graph.by_name("iter0/state").unwrap();
        let c1 = u.graph.by_name("iter1/cell").unwrap();
        assert!(u.graph.succs(s0).any(|s| s == c1), "state_0 feeds cell_1");
        // the last iteration has no outgoing recurrence
        let s2 = u.graph.by_name("iter2/state").unwrap();
        assert!(u.graph.succs(s2).next().is_none());
    }

    #[test]
    fn weights_broadcast_to_every_iteration() {
        let g = rnn_like();
        let u = break_cycles(&g, 3).unwrap();
        let w = u.graph.by_name("w").unwrap();
        assert_eq!(u.graph.succs(w).count(), 3);
        // the non-variable input only feeds iteration 0
        let x = u.graph.by_name("x").unwrap();
        assert_eq!(u.graph.succs(x).count(), 1);
    }

    #[test]
    fn loop_exit_comes_from_the_last_iteration() {
        let g = rnn_like();
        let u = break_cycles(&g, 3).unwrap();
        let out = u.graph.by_name("out").unwrap();
        let preds: Vec<String> = u
            .graph
            .preds(out)
            .map(|p| u.graph.op_ref(p).name.clone())
            .collect();
        assert_eq!(preds, vec!["iter2/cell".to_string()]);
    }

    #[test]
    fn acyclic_graphs_pass_through_unchanged_in_shape() {
        let mut g = Graph::new();
        let a = g.add_op(Operation::new("a", OpKind::Input, [4])).unwrap();
        let b = g.add_op(Operation::new("b", OpKind::Relu, [4])).unwrap();
        g.connect(a, b).unwrap();
        let u = break_cycles(&g, 5).unwrap();
        assert_eq!(u.graph.op_count(), 2);
        assert!(u.loop_ops.is_empty());
        assert!(u.graph.by_name("a").is_some());
    }

    #[test]
    fn unrolled_rnn_is_schedulable_end_to_end() {
        // the unrolled DAG must flow through autodiff like any model graph
        let g = rnn_like();
        let u = break_cycles(&g, 4).unwrap();
        let t = crate::autodiff::build_training_graph(&u.graph).unwrap();
        t.validate().unwrap();
        assert!(t.by_name("grad/iter0/cell").is_some());
    }
}
