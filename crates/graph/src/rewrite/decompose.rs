//! Structural DAG decomposition: collapse a training graph into a tree of
//! regions so placement can run over the (much smaller) quotient graph.
//!
//! The reduction is in the style of a CFS/series-parallel contraction: we
//! iteratively apply a small grammar of provably acyclicity-preserving
//! contractions until a fixpoint —
//!
//! * **series**: contract an edge `u → v` when `v` has a single predecessor
//!   or `u` has a single successor (straight-line chains, the bulk of a
//!   layer's forward/backward body);
//! * **parallel**: merge regions with identical predecessor *and* successor
//!   sets (fan-out/fan-in diamonds: attention heads, tower branches);
//! * **endpoint absorption**: fold a source (e.g. a `Variable`) into one of
//!   its successors, or a sink (e.g. an `ApplyGradient`) into one of its
//!   predecessors, when a reachability check proves the contraction cannot
//!   create a cycle.
//!
//! Contracting an edge `(u, v)` of a DAG creates a cycle iff some other
//! path `u ⇝ v` of length ≥ 2 exists. The series rules exclude such a path
//! structurally (it would need a second predecessor of `v` / successor of
//! `u`); the parallel rule merges mutually non-adjacent twins with equal
//! frontiers; endpoint absorption verifies the condition directly with a
//! bounded DFS over the live quotient. Every pass iterates regions in
//! ascending minimum-op-id order, so the decomposition is deterministic.
//!
//! Region growth is capped ([`DecomposeOptions::max_region_ops`]) so the
//! result is a *partition* into mid-sized regions rather than one giant
//! region — the quotient stays meaningful for cross-region placement.
//!
//! Region hashes are **order-canonical and name-free**: a region hashes the
//! sorted multiset of its ops' structural signatures (kind, shape, flops,
//! parameter bytes, collective, internal degrees) plus its sorted internal
//! edges. Two isomorphic regions — repeated layers of a stacked model, twin
//! fleet jobs built in different insertion orders — hash identically even
//! though [`Graph::structure_hash`] (deliberately id-sensitive, see its
//! docs) does not.

use crate::graph::Graph;
use crate::op::OpId;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// Tuning knobs for [`decompose_with`].
#[derive(Debug, Clone, Copy)]
pub struct DecomposeOptions {
    /// Hard cap on ops per region; merges that would exceed it are skipped.
    pub max_region_ops: usize,
    /// Safety bound on collapse rounds (fixpoint normally arrives first).
    pub max_rounds: usize,
    /// Node budget for each endpoint-absorption reachability DFS; a probe
    /// that exhausts the budget conservatively reports "reachable" and the
    /// merge is skipped.
    pub dfs_budget: usize,
}

impl DecomposeOptions {
    /// Defaults scaled to the graph: aim for a quotient of roughly 32
    /// top-level regions, with regions between 16 and 1024 ops.
    pub fn for_graph(g: &Graph) -> Self {
        DecomposeOptions {
            max_region_ops: (g.op_count() / 32).clamp(16, 1024),
            max_rounds: 64,
            dfs_budget: 4096,
        }
    }
}

/// Identifier of a region within one [`RegionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a region was formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A single op nothing could absorb — a residual, irreducible region.
    Leaf,
    /// Built from series contractions only (a straight-line chain).
    Chain,
    /// Built from parallel merges only (a fan-out/fan-in bundle).
    Bundle,
    /// Built from both series and parallel steps (a reduced composite).
    Mixed,
}

/// One region of the decomposition: a connected-by-construction set of ops
/// that the hierarchical planner treats as a unit.
#[derive(Debug, Clone)]
pub struct Region {
    /// How the region was formed.
    pub kind: RegionKind,
    /// Member ops, ascending by id.
    pub ops: Vec<OpId>,
    /// Order-canonical, name-free hash of the region's internal structure.
    /// Isomorphic regions (repeated layers, twin jobs) hash identically.
    pub hash: u64,
}

impl Region {
    /// Number of ops in the region.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the region is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The result of decomposing a graph: a partition of its ops into regions,
/// plus the quotient graph those regions induce.
#[derive(Debug, Clone)]
pub struct RegionTree {
    regions: Vec<Region>,
    op_region: Vec<u32>,
    /// Aggregated region-level edges `(src, dst, total bytes)`, sorted.
    quotient_edges: Vec<(RegionId, RegionId, u64)>,
    /// Op-level edges that cross a region boundary `(src, dst, bytes)`.
    boundary: Vec<(OpId, OpId, u64)>,
    rounds: usize,
    canonical: u64,
}

impl RegionTree {
    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the tree has no regions (only for an empty graph).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total ops across all regions (equals the source graph's op count).
    pub fn op_count(&self) -> usize {
        self.op_region.len()
    }

    /// The region containing `op`.
    pub fn region_of(&self, op: OpId) -> RegionId {
        RegionId(self.op_region[op.index()])
    }

    /// A region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// All regions, in id order (ascending minimum member op id).
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, &Region)> + '_ {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| (RegionId(i as u32), r))
    }

    /// Member ops of a region, ascending.
    pub fn ops(&self, id: RegionId) -> &[OpId] {
        &self.regions[id.index()].ops
    }

    /// Aggregated region-level edges `(src, dst, total bytes)`, sorted by
    /// `(src, dst)`. The quotient graph these edges induce is acyclic.
    pub fn quotient_edges(&self) -> &[(RegionId, RegionId, u64)] {
        &self.quotient_edges
    }

    /// Op-level edges crossing a region boundary, in source-graph order.
    pub fn boundary_edges(&self) -> &[(OpId, OpId, u64)] {
        &self.boundary
    }

    /// Residual, irreducible regions: singleton ops nothing could absorb.
    pub fn residual_regions(&self) -> Vec<RegionId> {
        self.regions()
            .filter(|(_, r)| r.kind == RegionKind::Leaf)
            .map(|(id, _)| id)
            .collect()
    }

    /// Collapse rounds run before the fixpoint (or round cap) was reached.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Order-canonical hash of the whole decomposition: the sorted multiset
    /// of region hashes plus the quotient edges expressed over them. Folded
    /// into plan-cache fingerprints by region-aware planners.
    pub fn canonical_hash(&self) -> u64 {
        self.canonical
    }
}

/// Decomposes `g` with [`DecomposeOptions::for_graph`] defaults.
pub fn decompose(g: &Graph) -> RegionTree {
    decompose_with(g, DecomposeOptions::for_graph(g))
}

const CHAIN_BIT: u8 = 1;
const BUNDLE_BIT: u8 = 2;

/// Union-find over ops with live quotient adjacency, the working state of
/// the contraction loop.
struct Builder {
    parent: Vec<u32>,
    size: Vec<u32>,
    bits: Vec<u8>,
    preds: Vec<BTreeSet<u32>>,
    succs: Vec<BTreeSet<u32>>,
    cap: usize,
}

impl Builder {
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let p = self.parent[x as usize];
            self.parent[x as usize] = self.parent[p as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn reps(&self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .filter(|&i| self.parent[i as usize] == i)
            .collect()
    }

    fn fits(&self, a: u32, b: u32) -> bool {
        (self.size[a as usize] + self.size[b as usize]) as usize <= self.cap
    }

    /// Merges representative regions `a` and `b`; the smaller op id stays
    /// the representative (which keeps iteration order deterministic).
    fn merge(&mut self, a: u32, b: u32, bit: u8) {
        debug_assert!(a != b);
        let (r, o) = if a < b { (a, b) } else { (b, a) };
        self.parent[o as usize] = r;
        self.size[r as usize] += self.size[o as usize];
        self.bits[r as usize] |= self.bits[o as usize] | bit;
        let op = std::mem::take(&mut self.preds[o as usize]);
        let os = std::mem::take(&mut self.succs[o as usize]);
        self.preds[r as usize].remove(&o);
        self.succs[r as usize].remove(&o);
        for p in op {
            if p == r {
                continue;
            }
            self.succs[p as usize].remove(&o);
            self.succs[p as usize].insert(r);
            self.preds[r as usize].insert(p);
        }
        for s in os {
            if s == r {
                continue;
            }
            self.preds[s as usize].remove(&o);
            self.preds[s as usize].insert(r);
            self.succs[r as usize].insert(s);
        }
        self.preds[r as usize].remove(&r);
        self.succs[r as usize].remove(&r);
    }

    /// Series pass: contract single-pred / single-succ edges.
    fn series_pass(&mut self) -> bool {
        let mut changed = false;
        for v in self.reps() {
            if self.parent[v as usize] != v {
                continue; // merged earlier this pass
            }
            if self.preds[v as usize].len() == 1 {
                let p = *self.preds[v as usize].iter().next().unwrap();
                if self.fits(p, v) {
                    self.merge(p, v, CHAIN_BIT);
                    changed = true;
                    continue;
                }
            }
            if self.succs[v as usize].len() == 1 {
                let s = *self.succs[v as usize].iter().next().unwrap();
                if self.fits(v, s) {
                    self.merge(v, s, CHAIN_BIT);
                    changed = true;
                }
            }
        }
        changed
    }

    /// Parallel pass: merge regions with identical pred and succ sets.
    /// Members of a group are mutually non-adjacent (a member adjacent to
    /// another would appear in its own frontier), and intra-pass merges
    /// rewrite every group key by the same substitution, so grouping
    /// computed at pass start stays valid.
    fn bundle_pass(&mut self) -> bool {
        let mut groups: BTreeMap<(Vec<u32>, Vec<u32>), Vec<u32>> = BTreeMap::new();
        for r in self.reps() {
            let key = (
                self.preds[r as usize].iter().copied().collect::<Vec<_>>(),
                self.succs[r as usize].iter().copied().collect::<Vec<_>>(),
            );
            groups.entry(key).or_default().push(r);
        }
        let mut changed = false;
        for ((preds, succs), members) in groups {
            if members.len() < 2 || (preds.is_empty() && succs.is_empty()) {
                continue;
            }
            let mut base = members[0];
            for &m in &members[1..] {
                if self.fits(base, m) {
                    self.merge(base, m, BUNDLE_BIT);
                    // base has the smaller id, so it stays the rep.
                    changed = true;
                } else {
                    base = m;
                }
            }
        }
        changed
    }

    /// Bounded multi-source DFS on the live quotient: does any of `from`
    /// reach `target`? Exhausting the budget reports `true` (pessimistic).
    fn reaches(&mut self, from: &[u32], target: u32, budget: usize) -> bool {
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        let mut stack: Vec<u32> = from.to_vec();
        let mut visited = 0usize;
        while let Some(x) = stack.pop() {
            if x == target {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            visited += 1;
            if visited > budget {
                return true;
            }
            for &s in &self.succs[x as usize] {
                if !seen.contains(&s) {
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Endpoint pass: absorb sources into a successor (and sinks into a
    /// predecessor) when a live reachability probe proves the contraction
    /// acyclic — no other successor of the source may reach the chosen
    /// target (symmetrically for sinks).
    fn endpoint_pass(&mut self, budget: usize) -> bool {
        let mut changed = false;
        for r in self.reps() {
            if self.parent[r as usize] != r {
                continue;
            }
            let (is_source, frontier) =
                if self.preds[r as usize].is_empty() && !self.succs[r as usize].is_empty() {
                    (
                        true,
                        self.succs[r as usize].iter().copied().collect::<Vec<_>>(),
                    )
                } else if self.succs[r as usize].is_empty() && !self.preds[r as usize].is_empty() {
                    (
                        false,
                        self.preds[r as usize].iter().copied().collect::<Vec<_>>(),
                    )
                } else {
                    continue;
                };
            if frontier.len() == 1 {
                continue; // series pass already owns this case
            }
            for &cand in &frontier {
                if !self.fits(r, cand) {
                    continue;
                }
                let safe = if is_source {
                    let others: Vec<u32> =
                        frontier.iter().copied().filter(|&x| x != cand).collect();
                    !self.reaches(&others, cand, budget)
                } else {
                    let others: BTreeSet<u32> =
                        frontier.iter().copied().filter(|&x| x != cand).collect();
                    let mut hit = false;
                    for &t in &others {
                        if self.reaches(&[cand], t, budget) {
                            hit = true;
                            break;
                        }
                    }
                    !hit
                };
                if safe {
                    self.merge(r, cand, CHAIN_BIT);
                    changed = true;
                    break;
                }
            }
        }
        changed
    }
}

/// Decomposes `g` into a [`RegionTree`] under explicit options.
///
/// The result is deterministic for a given graph and options: every pass
/// iterates in ascending region-representative order and all working sets
/// are ordered.
pub fn decompose_with(g: &Graph, opts: DecomposeOptions) -> RegionTree {
    let n = g.op_count();
    let mut b = Builder {
        parent: (0..n as u32).collect(),
        size: vec![1; n],
        bits: vec![0; n],
        preds: vec![BTreeSet::new(); n],
        succs: vec![BTreeSet::new(); n],
        cap: opts.max_region_ops.max(1),
    };
    for e in g.iter_edges() {
        let (s, d) = (e.src.index() as u32, e.dst.index() as u32);
        if s != d {
            b.succs[s as usize].insert(d);
            b.preds[d as usize].insert(s);
        }
    }

    let mut rounds = 0usize;
    while rounds < opts.max_rounds {
        rounds += 1;
        let mut changed = b.series_pass();
        changed |= b.bundle_pass();
        changed |= b.endpoint_pass(opts.dfs_budget);
        if !changed {
            break;
        }
    }

    // Compact representatives into dense region ids (ascending min op id).
    let reps = b.reps();
    let mut region_index: BTreeMap<u32, u32> = BTreeMap::new();
    for (i, &r) in reps.iter().enumerate() {
        region_index.insert(r, i as u32);
    }
    let mut op_region = vec![0u32; n];
    let mut ops_per: Vec<Vec<OpId>> = vec![Vec::new(); reps.len()];
    for i in 0..n as u32 {
        let r = b.find(i);
        let idx = region_index[&r];
        op_region[i as usize] = idx;
        ops_per[idx as usize].push(OpId(i));
    }

    // Internal degrees (per op, counting only same-region edges) feed the
    // op signatures; quotient and boundary edges fall out of the same scan.
    let mut int_in = vec![0u32; n];
    let mut int_out = vec![0u32; n];
    let mut internal_edges: Vec<Vec<(usize, usize, u64)>> = vec![Vec::new(); reps.len()];
    let mut quotient: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut boundary: Vec<(OpId, OpId, u64)> = Vec::new();
    for e in g.iter_edges() {
        let (rs, rd) = (op_region[e.src.index()], op_region[e.dst.index()]);
        if rs == rd {
            int_in[e.dst.index()] += 1;
            int_out[e.src.index()] += 1;
            internal_edges[rs as usize].push((e.src.index(), e.dst.index(), e.bytes));
        } else {
            *quotient.entry((rs, rd)).or_insert(0) += e.bytes;
            boundary.push((e.src, e.dst, e.bytes));
        }
    }

    let mut regions = Vec::with_capacity(reps.len());
    for (idx, (rep, ops)) in reps.iter().zip(ops_per).enumerate() {
        let kind = match (
            b.bits[*rep as usize] & CHAIN_BIT,
            b.bits[*rep as usize] & BUNDLE_BIT,
        ) {
            (0, 0) => RegionKind::Leaf,
            (_, 0) => RegionKind::Chain,
            (0, _) => RegionKind::Bundle,
            _ => RegionKind::Mixed,
        };
        let hash = region_hash(g, &ops, &internal_edges[idx], &int_in, &int_out);
        regions.push(Region { kind, ops, hash });
    }

    let quotient_edges: Vec<(RegionId, RegionId, u64)> = quotient
        .into_iter()
        .map(|((s, d), bytes)| (RegionId(s), RegionId(d), bytes))
        .collect();

    let canonical = canonical_hash(&regions, &quotient_edges, n);

    RegionTree {
        regions,
        op_region,
        quotient_edges,
        boundary,
        rounds,
        canonical,
    }
}

/// Name- and id-free structural signature of one op inside its region.
fn op_sig(g: &Graph, op: OpId, int_in: &[u32], int_out: &[u32]) -> u64 {
    let o = g.op_ref(op);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    o.kind.hash(&mut h);
    o.out_shape.hash(&mut h);
    o.flops.hash(&mut h);
    o.param_bytes.hash(&mut h);
    o.collective.hash(&mut h);
    int_in[op.index()].hash(&mut h);
    int_out[op.index()].hash(&mut h);
    h.finish()
}

/// Order-canonical region hash: sorted op signatures plus sorted internal
/// edges expressed over those signatures. Internal-only on purpose, so
/// repeated layers hash identically regardless of what they connect to.
fn region_hash(
    g: &Graph,
    ops: &[OpId],
    internal: &[(usize, usize, u64)],
    int_in: &[u32],
    int_out: &[u32],
) -> u64 {
    let mut sig_of: BTreeMap<usize, u64> = BTreeMap::new();
    let mut sigs: Vec<u64> = ops
        .iter()
        .map(|&op| {
            let s = op_sig(g, op, int_in, int_out);
            sig_of.insert(op.index(), s);
            s
        })
        .collect();
    sigs.sort_unstable();
    let mut edges: Vec<(u64, u64, u64)> = internal
        .iter()
        .map(|&(s, d, bytes)| (sig_of[&s], sig_of[&d], bytes))
        .collect();
    edges.sort_unstable();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ops.len().hash(&mut h);
    for s in sigs {
        s.hash(&mut h);
    }
    edges.len().hash(&mut h);
    for e in edges {
        e.hash(&mut h);
    }
    h.finish()
}

/// Whole-tree canonical hash: sorted region-hash multiset plus the quotient
/// edges rewritten over region hashes.
fn canonical_hash(regions: &[Region], quotient: &[(RegionId, RegionId, u64)], ops: usize) -> u64 {
    let mut rh: Vec<u64> = regions.iter().map(|r| r.hash).collect();
    rh.sort_unstable();
    let mut qe: Vec<(u64, u64, u64)> = quotient
        .iter()
        .map(|&(s, d, bytes)| (regions[s.index()].hash, regions[d.index()].hash, bytes))
        .collect();
    qe.sort_unstable();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ops.hash(&mut h);
    rh.len().hash(&mut h);
    for x in rh {
        x.hash(&mut h);
    }
    for e in qe {
        e.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, Operation};

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut prev = None;
        for i in 0..n {
            let id = g
                .add_op(Operation::new(format!("op{i}"), OpKind::Relu, [4, 4]).with_flops(16))
                .unwrap();
            if let Some(p) = prev {
                g.connect_bytes(p, id, 64).unwrap();
            }
            prev = Some(id);
        }
        g
    }

    fn diamond(names: [&str; 4]) -> Graph {
        let mut g = Graph::new();
        let a = g
            .add_op(Operation::new(names[0], OpKind::Input, [4, 4]))
            .unwrap();
        let b = g
            .add_op(Operation::new(names[1], OpKind::Relu, [4, 4]).with_flops(16))
            .unwrap();
        let c = g
            .add_op(Operation::new(names[2], OpKind::Relu, [4, 4]).with_flops(16))
            .unwrap();
        let d = g
            .add_op(Operation::new(names[3], OpKind::Add, [4, 4]).with_flops(16))
            .unwrap();
        g.connect_bytes(a, b, 64).unwrap();
        g.connect_bytes(a, c, 64).unwrap();
        g.connect_bytes(b, d, 64).unwrap();
        g.connect_bytes(c, d, 64).unwrap();
        g
    }

    fn quotient_is_acyclic(t: &RegionTree) -> bool {
        let n = t.len();
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(s, d, _) in t.quotient_edges() {
            indeg[d.index()] += 1;
            succs[s.index()].push(d.index());
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(x) = ready.pop() {
            seen += 1;
            for &s in &succs[x] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        seen == n
    }

    #[test]
    fn straight_chain_collapses_to_one_region() {
        let g = chain(16); // for_graph caps tiny graphs at 16 ops/region
        let t = decompose(&g);
        assert_eq!(t.len(), 1);
        assert_eq!(t.region(RegionId(0)).kind, RegionKind::Chain);
        assert_eq!(t.op_count(), 16);
        assert!(t.quotient_edges().is_empty());
        assert!(t.boundary_edges().is_empty());
    }

    #[test]
    fn diamond_collapses_fully() {
        let g = diamond(["a", "b", "c", "d"]);
        let t = decompose(&g);
        assert_eq!(t.len(), 1, "diamond should reduce to one region");
        assert!(quotient_is_acyclic(&t));
    }

    #[test]
    fn partition_covers_every_op_exactly_once() {
        let g = diamond(["a", "b", "c", "d"]);
        let t = decompose_with(
            &g,
            DecomposeOptions {
                max_region_ops: 2,
                max_rounds: 64,
                dfs_budget: 4096,
            },
        );
        let total: usize = t.regions().map(|(_, r)| r.len()).sum();
        assert_eq!(total, g.op_count());
        let mut seen = BTreeSet::new();
        for (_, r) in t.regions() {
            for &op in &r.ops {
                assert!(seen.insert(op), "op {op:?} in two regions");
            }
        }
        for (id, _) in g.iter_ops() {
            assert!(seen.contains(&id));
            let r = t.region_of(id);
            assert!(t.ops(r).contains(&id));
        }
        // Boundary + internal edges together cover the whole edge set.
        let internal: usize = g
            .iter_edges()
            .filter(|e| t.region_of(e.src) == t.region_of(e.dst))
            .count();
        assert_eq!(internal + t.boundary_edges().len(), g.edge_count());
        assert!(quotient_is_acyclic(&t));
    }

    #[test]
    fn cap_is_respected() {
        let g = chain(32);
        let t = decompose_with(
            &g,
            DecomposeOptions {
                max_region_ops: 5,
                max_rounds: 64,
                dfs_budget: 4096,
            },
        );
        assert!(t.len() > 1);
        for (_, r) in t.regions() {
            assert!(r.len() <= 5, "region of {} ops exceeds cap", r.len());
        }
        assert!(quotient_is_acyclic(&t));
    }

    #[test]
    fn decomposition_is_deterministic() {
        let g = diamond(["a", "b", "c", "d"]);
        let t1 = decompose(&g);
        let t2 = decompose(&g);
        assert_eq!(t1.canonical_hash(), t2.canonical_hash());
        for ((_, r1), (_, r2)) in t1.regions().zip(t2.regions()) {
            assert_eq!(r1.ops, r2.ops);
            assert_eq!(r1.hash, r2.hash);
        }
        assert_eq!(t1.rounds(), t2.rounds());
    }

    /// Pinned: region hashes are order-canonical — the same diamond built
    /// with its parallel arms inserted in opposite orders (so op ids and
    /// `structure_hash` differ) decomposes to the same canonical hash.
    #[test]
    fn permuted_insertion_orders_share_canonical_hashes() {
        let mut g1 = Graph::new();
        let a = g1
            .add_op(Operation::new("a", OpKind::Input, [4, 4]))
            .unwrap();
        let b = g1
            .add_op(Operation::new("b", OpKind::Relu, [4, 4]).with_flops(16))
            .unwrap();
        let c = g1
            .add_op(Operation::new("c", OpKind::Softmax, [4, 4]).with_flops(32))
            .unwrap();
        let d = g1
            .add_op(Operation::new("d", OpKind::Add, [4, 4]).with_flops(16))
            .unwrap();
        g1.connect_bytes(a, b, 64).unwrap();
        g1.connect_bytes(a, c, 64).unwrap();
        g1.connect_bytes(b, d, 64).unwrap();
        g1.connect_bytes(c, d, 64).unwrap();

        // Same shape, arms inserted in the other order and renamed.
        let mut g2 = Graph::new();
        let a2 = g2
            .add_op(Operation::new("x", OpKind::Input, [4, 4]))
            .unwrap();
        let c2 = g2
            .add_op(Operation::new("y", OpKind::Softmax, [4, 4]).with_flops(32))
            .unwrap();
        let b2 = g2
            .add_op(Operation::new("z", OpKind::Relu, [4, 4]).with_flops(16))
            .unwrap();
        let d2 = g2
            .add_op(Operation::new("w", OpKind::Add, [4, 4]).with_flops(16))
            .unwrap();
        g2.connect_bytes(a2, b2, 64).unwrap();
        g2.connect_bytes(b2, d2, 64).unwrap();
        g2.connect_bytes(a2, c2, 64).unwrap();
        g2.connect_bytes(c2, d2, 64).unwrap();

        assert_ne!(
            g1.structure_hash(),
            g2.structure_hash(),
            "structure_hash is id-sensitive by design"
        );
        let t1 = decompose(&g1);
        let t2 = decompose(&g2);
        assert_eq!(t1.canonical_hash(), t2.canonical_hash());
    }

    /// Repeated identical blocks produce identical region hashes even with
    /// distinct op names — the property region-granular caching rides on.
    #[test]
    fn repeated_blocks_share_region_hashes() {
        let mut g = Graph::new();
        let mut prev = None;
        for blk in 0..3 {
            for i in 0..4 {
                let id = g
                    .add_op(
                        Operation::new(format!("blk{blk}/op{i}"), OpKind::Relu, [8, 8])
                            .with_flops(64),
                    )
                    .unwrap();
                if let Some(p) = prev {
                    g.connect_bytes(p, id, 256).unwrap();
                }
                prev = Some(id);
            }
        }
        let t = decompose_with(
            &g,
            DecomposeOptions {
                max_region_ops: 4,
                max_rounds: 64,
                dfs_budget: 4096,
            },
        );
        let hashes: Vec<u64> = t.regions().map(|(_, r)| r.hash).collect();
        assert!(hashes.len() >= 3);
        let distinct: BTreeSet<u64> = hashes.iter().copied().collect();
        assert!(
            distinct.len() < hashes.len(),
            "repeated blocks must share at least one region hash: {hashes:?}"
        );
    }

    #[test]
    fn empty_graph_decomposes_to_empty_tree() {
        let g = Graph::new();
        let t = decompose(&g);
        assert!(t.is_empty());
        assert_eq!(t.op_count(), 0);
    }
}
