//! Graphviz DOT export, for visualizing computation graphs and placements.

use crate::graph::Graph;
use crate::op::OpKind;

/// Renders the graph in Graphviz DOT format.
///
/// Node shapes encode op roles: variables are boxes, compute ops are
/// ellipses, plumbing (split/concat/identity) is diamonds. Pass
/// `device_of` to color nodes by device assignment (indexed by `OpId`;
/// shorter slices leave the remaining nodes uncolored).
///
/// # Examples
///
/// ```
/// use fastt_graph::{Graph, OpKind, Operation, to_dot};
///
/// let mut g = Graph::new();
/// let a = g.add_op(Operation::new("x", OpKind::Input, [4]))?;
/// let b = g.add_op(Operation::new("r", OpKind::Relu, [4]))?;
/// g.connect(a, b)?;
/// let dot = to_dot(&g, &[]);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"x\" -> \"r\""));
/// # Ok::<(), fastt_graph::GraphError>(())
/// ```
pub fn to_dot(graph: &Graph, device_of: &[u16]) -> String {
    const PALETTE: [&str; 8] = [
        "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
    ];
    let mut out = String::from("digraph G {\n  rankdir=TB;\n  node [fontsize=9];\n");
    for (oid, op) in graph.iter_ops() {
        let shape = match op.kind {
            OpKind::Variable => "box",
            OpKind::Split | OpKind::Concat | OpKind::Identity => "diamond",
            OpKind::Input | OpKind::Loss => "invhouse",
            _ => "ellipse",
        };
        let mut attrs = format!("shape={shape}");
        if let Some(&d) = device_of.get(oid.index()) {
            let color = PALETTE[d as usize % PALETTE.len()];
            attrs.push_str(&format!(", style=filled, fillcolor=\"{color}\""));
            attrs.push_str(&format!(", xlabel=\"gpu{d}\""));
        }
        out.push_str(&format!("  \"{}\" [{attrs}];\n", op.name));
    }
    for e in graph.iter_edges() {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            graph.op_ref(e.src).name,
            graph.op_ref(e.dst).name,
            human_bytes(e.bytes),
        ));
    }
    out.push_str("}\n");
    out
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1}G", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}M", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}K", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operation;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let x = g
            .add_op(Operation::new("x", OpKind::Input, [1 << 20]))
            .unwrap();
        let w = g
            .add_op(Operation::new("w", OpKind::Variable, [256]).with_param_bytes(1024))
            .unwrap();
        let m = g.add_op(Operation::new("m", OpKind::MatMul, [64])).unwrap();
        g.connect(x, m).unwrap();
        g.connect(w, m).unwrap();
        g
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g, &[]);
        for n in ["\"x\"", "\"w\"", "\"m\""] {
            assert!(dot.contains(n), "missing node {n}");
        }
        assert!(dot.contains("\"x\" -> \"m\""));
        assert!(dot.contains("\"w\" -> \"m\""));
        assert!(dot.starts_with("digraph G {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_shapes_by_kind() {
        let g = sample();
        let dot = to_dot(&g, &[]);
        assert!(dot.contains("\"w\" [shape=box]"));
        assert!(dot.contains("\"m\" [shape=ellipse]"));
    }

    #[test]
    fn dot_colors_by_device() {
        let g = sample();
        let dot = to_dot(&g, &[0, 1, 1]);
        assert!(dot.contains("fillcolor"));
        assert!(dot.contains("xlabel=\"gpu1\""));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(12), "12B");
        assert_eq!(human_bytes(4096), "4.0K");
        assert_eq!(human_bytes(5 << 20), "5.0M");
        assert_eq!(human_bytes(3 << 30), "3.0G");
    }
}
