//! Property tests. The offline build environment cannot fetch the external
//! `proptest` crate, so these are compiled only under `--features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests for the graph substrate.

use fastt_graph::{
    build_training_graph, decompose, replicate, split_operation, Graph, OpKind, Operation, SplitDim,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a random layered forward network: `layers` MatMul stages, each with
/// its own variable, ending in a Loss. Batch and width are powers of two so
/// splits always divide evenly.
fn layered_forward(layers: usize, batch: u64, width: u64) -> Graph {
    let mut g = Graph::new();
    let x = g
        .add_op(Operation::new("x", OpKind::Input, [batch, width]))
        .unwrap();
    let mut prev = x;
    for i in 0..layers {
        let w = g
            .add_op(
                Operation::new(format!("w{i}"), OpKind::Variable, [width, width])
                    .with_param_bytes(width * width * 4),
            )
            .unwrap();
        let mm = g
            .add_op(
                Operation::new(format!("mm{i}"), OpKind::MatMul, [batch, width])
                    .with_flops(2 * batch * width * width),
            )
            .unwrap();
        g.connect(prev, mm).unwrap();
        g.connect(w, mm).unwrap();
        let r = g
            .add_op(Operation::new(
                format!("relu{i}"),
                OpKind::Relu,
                [batch, width],
            ))
            .unwrap();
        g.connect(mm, r).unwrap();
        prev = r;
    }
    let loss = g.add_op(Operation::new("loss", OpKind::Loss, [])).unwrap();
    g.connect(prev, loss).unwrap();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Autodiff always produces a valid DAG with exactly one grad op per
    /// differentiable forward op and one apply op per variable.
    #[test]
    fn autodiff_structure(layers in 1usize..8, bp in 0u32..4, wp in 2u32..6) {
        let batch = 1u64 << bp;
        let width = 1u64 << wp;
        let fwd = layered_forward(layers, batch, width);
        let t = build_training_graph(&fwd).unwrap();
        t.validate().unwrap();

        let fwd_diff = fwd
            .iter_ops()
            .filter(|(_, o)| !matches!(o.kind, OpKind::Input | OpKind::Variable))
            .count();
        let n_grad = t
            .iter_ops()
            .filter(|(_, o)| o.name.starts_with("grad/"))
            .count();
        prop_assert_eq!(fwd_diff, n_grad);

        let n_vars = fwd.iter_ops().filter(|(_, o)| o.kind.is_variable()).count();
        let n_apply = t
            .iter_ops()
            .filter(|(_, o)| o.kind == OpKind::ApplyGradient)
            .count();
        prop_assert_eq!(n_vars, n_apply);
    }

    /// Parameter-server replication keeps variables and updates shared,
    /// multiplies everything else, and adds one aggregation op per variable
    /// (when n > 1).
    #[test]
    fn replicate_counts(layers in 1usize..5, n in 1u32..9) {
        let fwd = layered_forward(layers, 8, 16);
        let t = build_training_graph(&fwd).unwrap();
        let r = replicate(&t, n).unwrap();
        r.graph.validate().unwrap();
        let n_vars = t.iter_ops().filter(|(_, o)| o.kind.is_variable()).count();
        let shared = 2 * n_vars; // each variable + its update
        let expected_agg = if n > 1 { n_vars } else { 0 };
        prop_assert_eq!(
            r.graph.op_count(),
            (t.op_count() - shared) * n as usize + shared + expected_agg
        );
        // shared state is untagged; per-replica ops are tagged
        for (oid, op) in r.graph.iter_ops() {
            let tag = r.replica_of(oid);
            let is_shared = matches!(
                op.kind,
                OpKind::AggregateGradients | OpKind::Variable | OpKind::ApplyGradient
            );
            if is_shared {
                prop_assert_eq!(tag, None);
            } else {
                prop_assert!(tag.is_some());
            }
        }
    }

    /// Splitting preserves total flops of the split op (up to integer
    /// division) and keeps the graph valid; total graph flops never grow by
    /// more than the plumbing nodes' contribution.
    #[test]
    fn split_preserves_flops(np in 1u32..4) {
        let n = 1u32 << np; // 2, 4, 8 — divides the batch of 64 evenly
        let fwd = layered_forward(2, 64, 64);
        let t = build_training_graph(&fwd).unwrap();
        let target = t.by_name("mm0").unwrap();
        let before = t.op_ref(target).flops;
        let res = split_operation(&t, target, SplitDim::Batch, n).unwrap();
        res.graph.validate().unwrap();
        let part_total: u64 = res.parts.iter().map(|&p| res.graph.op_ref(p).flops).sum();
        // integer division may lose at most n-1 flops
        prop_assert!(before - part_total < n as u64);
    }

    /// id_map from a split covers every surviving op and the new graph can
    /// still be topologically sorted.
    #[test]
    fn split_id_map_total(np in 1u32..3) {
        let n = 1u32 << np; // 2 or 4 — divides the width of 32 evenly
        let fwd = layered_forward(3, 32, 32);
        let t = build_training_graph(&fwd).unwrap();
        let target = t.by_name("mm1").unwrap();
        let res = split_operation(&t, target, SplitDim::Channel, n).unwrap();
        for (oid, _) in t.iter_ops() {
            if oid == target {
                prop_assert_eq!(res.id_map[oid.index()], None);
            } else {
                let nid = res.id_map[oid.index()].unwrap();
                prop_assert_eq!(&res.graph.op_ref(nid).name, &t.op_ref(oid).name);
            }
        }
        prop_assert!(res.graph.topo_order().is_ok());
    }

    /// Structural decomposition is a lossless partition: every op lands in
    /// exactly one region, and every edge is recoverable — either internal
    /// to one region or listed as a boundary edge, with the quotient edges
    /// exactly the region-level projection of the boundary set. Expanding
    /// the region tree back to (ops, edges) loses nothing.
    #[test]
    fn decompose_expand_round_trip(layers in 1usize..8, bp in 0u32..4, wp in 2u32..6) {
        let fwd = layered_forward(layers, 1u64 << bp, 1u64 << wp);
        let t = build_training_graph(&fwd).unwrap();
        let tree = decompose(&t);

        // ops: exactly-one-region coverage, and region_of agrees with the
        // per-region op lists
        let mut covered = vec![0u32; t.op_count()];
        for (id, r) in tree.regions() {
            for &op in &r.ops {
                covered[op.index()] += 1;
                prop_assert_eq!(tree.region_of(op), id);
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));

        // edges: internal ∪ boundary == all edges, disjointly
        let boundary: HashSet<(u32, u32)> = tree
            .boundary_edges()
            .iter()
            .map(|&(s, d, _)| (s.0, d.0))
            .collect();
        let mut quotient_proj: HashSet<(u32, u32)> = HashSet::new();
        for e in t.iter_edges() {
            let (rs, rd) = (tree.region_of(e.src), tree.region_of(e.dst));
            if rs == rd {
                prop_assert!(
                    !boundary.contains(&(e.src.0, e.dst.0)),
                    "internal edge {}->{} listed as boundary", e.src, e.dst
                );
            } else {
                prop_assert!(
                    boundary.contains(&(e.src.0, e.dst.0)),
                    "cross-region edge {}->{} missing from boundary", e.src, e.dst
                );
                quotient_proj.insert((rs.0, rd.0));
            }
        }
        prop_assert_eq!(boundary.len(), t.iter_edges().filter(|e| {
            tree.region_of(e.src) != tree.region_of(e.dst)
        }).count());

        // quotient edges are exactly the projected cross-region edges
        let quotient: HashSet<(u32, u32)> = tree
            .quotient_edges()
            .iter()
            .map(|&(s, d, _)| (s.0, d.0))
            .collect();
        prop_assert_eq!(quotient, quotient_proj);
    }

    /// Topological order returned by the graph is always a valid linear
    /// extension: every edge goes forward.
    #[test]
    fn topo_is_linear_extension(layers in 1usize..10) {
        let fwd = layered_forward(layers, 4, 8);
        let t = build_training_graph(&fwd).unwrap();
        let order = t.topo_order().unwrap();
        let mut pos = vec![0usize; t.op_count()];
        for (i, o) in order.iter().enumerate() {
            pos[o.index()] = i;
        }
        for e in t.iter_edges() {
            prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }
}
