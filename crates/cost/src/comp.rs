//! The computation cost model: execution time of a (sub-)operation on a
//! device, keyed by op name + device (Sec. 4 "The computation cost model
//! provides the execution time of a (sub-)operation on a device, using the
//! operation's name and device as the key").

use fastt_cluster::DeviceId;
use fastt_graph::Graph;
use fastt_sim::RunTrace;
use std::collections::HashMap;

/// Canonicalizes an op name for cost-model keying: data-parallel replicas
/// (`rep3/conv1_1` → `conv1_1`) and split parts (`conv.part2` → `conv.part#`)
/// perform identical work, so their measurements share one key. This is what
/// makes the paper's bootstrap fast: "we use data parallelism as the starting
/// strategy … by which each operation is replicated to different GPUs and
/// their execution time on different devices is learned" (Sec. 4).
pub fn canonical_name(name: &str) -> String {
    let mut s = name;
    // strip a leading replica prefix
    if let Some(rest) = s.strip_prefix("rep") {
        if let Some(slash) = rest.find('/') {
            if rest[..slash].chars().all(|c| c.is_ascii_digit()) && slash > 0 {
                s = &rest[slash + 1..];
            }
        }
    }
    // merge part indices
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find(".part") {
        out.push_str(&rest[..pos + 5]);
        rest = &rest[pos + 5..];
        let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 {
            out.push('#');
            rest = &rest[digits..];
        }
    }
    out.push_str(rest);
    out
}

/// Running mean of observed execution times for one (op, device) key.
#[derive(Debug, Clone, Copy, Default)]
struct Stat {
    sum: f64,
    count: u64,
    /// True when the value is an analytic seed rather than a measurement;
    /// seeds may be replaced by later seeds, measurements may not.
    seeded: bool,
}

impl Stat {
    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Profiled per-(op, device) execution times with running averages.
#[derive(Debug, Clone, Default)]
pub struct CompCostModel {
    stats: HashMap<(String, DeviceId), Stat>,
    /// Means at the last [`CompCostModel::snapshot`], for stability checks.
    snapshot: HashMap<(String, DeviceId), f64>,
    /// Monotonic counter bumped on every real measurement; plan-cache
    /// fingerprints use it to detect that predictions may have moved.
    generation: u64,
}

impl CompCostModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed execution of `name` on `device`. The first real
    /// measurement discards any analytic seed for the key. Names are
    /// canonicalized (see [`canonical_name`]).
    ///
    /// Once a key has a few real measurements (≥ 3), new samples are
    /// winsorized to within 8x of the running mean: a straggler window or a
    /// faulty re-executed op then nudges the average instead of poisoning
    /// it, while genuine hardware drift (which arrives as a stream of
    /// consistent samples, not one spike) still moves the mean past the
    /// drift threshold.
    pub fn observe(&mut self, name: &str, device: DeviceId, secs: f64) {
        self.generation += 1;
        let s = self
            .stats
            .entry((canonical_name(name), device))
            .or_default();
        if s.seeded {
            *s = Stat::default();
        }
        let secs = if s.count >= 3 {
            let m = s.mean();
            if m > 0.0 {
                secs.clamp(m / 8.0, m * 8.0)
            } else {
                secs
            }
        } else {
            secs
        };
        s.sum += secs;
        s.count += 1;
    }

    /// Ingests every op record of a profiled iteration
    /// (the paper's `RunMetadata` consumption).
    pub fn update_from_trace(&mut self, graph: &Graph, trace: &RunTrace) {
        for r in &trace.op_records {
            let name = &graph.op_ref(r.op).name;
            self.observe(name, r.device, r.duration());
        }
    }

    /// Mean observed execution time of `name` on `device`, if any.
    pub fn get(&self, name: &str, device: DeviceId) -> Option<f64> {
        self.stats
            .get(&(canonical_name(name), device))
            .filter(|s| s.count > 0)
            .map(|s| s.mean())
    }

    /// Maximal mean execution time of `name` over all profiled devices —
    /// the `w_i` of the rank computation (Sec. 5.1).
    pub fn max_time(&self, name: &str) -> Option<f64> {
        let key = canonical_name(name);
        let mut best: Option<f64> = None;
        for ((n, _), s) in &self.stats {
            if *n == key && s.count > 0 {
                let m = s.mean();
                best = Some(best.map_or(m, |b: f64| b.max(m)));
            }
        }
        best
    }

    /// Number of distinct (op, device) keys profiled.
    pub fn key_count(&self) -> usize {
        self.stats.len()
    }

    /// Monotonic measurement generation: bumped once per [`observe`] call
    /// (including trace ingestion), never by [`seed`] — analytic priors do
    /// not invalidate cached plans.
    ///
    /// [`observe`]: CompCostModel::observe
    /// [`seed`]: CompCostModel::seed
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether every op of `graph` has at least one profiled device.
    pub fn covers(&self, graph: &Graph) -> bool {
        graph
            .iter_ops()
            .all(|(_, o)| self.max_time(&o.name).is_some())
    }

    /// Seeds an estimate for `name` on every device in `devices` (used to
    /// give freshly created sub-operations an analytic prior of
    /// `parent_time / n` before they have ever run; refined by profiling).
    ///
    /// A seed never overwrites real measurements, but a newer seed replaces
    /// an older one (split candidates with different part counts reuse
    /// sub-op names).
    pub fn seed(&mut self, name: &str, devices: &[DeviceId], secs: f64) {
        for &d in devices {
            let s = self.stats.entry((canonical_name(name), d)).or_default();
            if s.count == 0 || s.seeded {
                *s = Stat {
                    sum: secs,
                    count: 1,
                    seeded: true,
                };
            }
        }
    }

    /// Remembers the current means; [`CompCostModel::max_drift`] compares
    /// against them.
    pub fn snapshot(&mut self) {
        self.snapshot = self
            .stats
            .iter()
            .map(|(k, s)| (k.clone(), s.mean()))
            .collect();
    }

    /// Largest relative change of any key's mean since the last snapshot
    /// (keys unseen at snapshot time count as fully drifted). The paper
    /// finishes pre-training "when the average time of the same
    /// (sub-)operation(s) on the same device(s) does not vary much".
    pub fn max_drift(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for (k, s) in &self.stats {
            let now = s.mean();
            match self.snapshot.get(k) {
                Some(&then) if then > 0.0 => {
                    worst = worst.max((now - then).abs() / then);
                }
                _ => worst = worst.max(1.0),
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DeviceId = DeviceId(0);
    const D1: DeviceId = DeviceId(1);

    #[test]
    fn observe_and_average() {
        let mut m = CompCostModel::new();
        m.observe("conv", D0, 1.0);
        m.observe("conv", D0, 3.0);
        assert_eq!(m.get("conv", D0), Some(2.0));
        assert_eq!(m.get("conv", D1), None);
    }

    #[test]
    fn max_time_over_devices() {
        let mut m = CompCostModel::new();
        m.observe("conv", D0, 1.0);
        m.observe("conv", D1, 5.0);
        assert_eq!(m.max_time("conv"), Some(5.0));
        assert_eq!(m.max_time("missing"), None);
    }

    #[test]
    fn seed_does_not_overwrite_observations() {
        let mut m = CompCostModel::new();
        m.observe("x", D0, 2.0);
        m.seed("x", &[D0, D1], 9.0);
        assert_eq!(m.get("x", D0), Some(2.0));
        assert_eq!(m.get("x", D1), Some(9.0));
    }

    #[test]
    fn drift_detection() {
        let mut m = CompCostModel::new();
        m.observe("a", D0, 1.0);
        m.snapshot();
        assert_eq!(m.max_drift(), 0.0);
        m.observe("a", D0, 1.0); // mean unchanged
        assert_eq!(m.max_drift(), 0.0);
        m.observe("a", D0, 7.0); // mean 3.0 → drift 2.0
        assert!(m.max_drift() > 1.9);
        // a brand-new key counts as full drift
        m.snapshot();
        m.observe("b", D0, 1.0);
        assert!(m.max_drift() >= 1.0);
    }

    #[test]
    fn winsorized_observe_bounds_straggler_spikes() {
        let mut m = CompCostModel::new();
        for _ in 0..4 {
            m.observe("conv", D0, 1.0);
        }
        // a 100x spike (op re-executed under faults) is clamped to 8x ...
        m.observe("conv", D0, 100.0);
        let after_spike = m.get("conv", D0).unwrap();
        assert!(
            (after_spike - (4.0 + 8.0) / 5.0).abs() < 1e-9,
            "mean {after_spike}"
        );
        // ... while early samples (count < 3) are taken at face value
        let mut fresh = CompCostModel::new();
        fresh.observe("x", D0, 1.0);
        fresh.observe("x", D0, 100.0);
        assert_eq!(fresh.get("x", D0), Some(50.5));
    }

    #[test]
    fn canonical_name_strips_replicas_and_part_indices() {
        assert_eq!(canonical_name("rep3/conv1_1"), "conv1_1");
        assert_eq!(canonical_name("rep12/grad/fc6"), "grad/fc6");
        assert_eq!(canonical_name("conv.part2"), "conv.part#");
        assert_eq!(canonical_name("rep0/conv.part7"), "conv.part#");
        assert_eq!(canonical_name("conv.part0.part1"), "conv.part#.part#");
        // names that merely resemble the patterns are left alone
        assert_eq!(canonical_name("repository/x"), "repository/x");
        assert_eq!(canonical_name("agg/apply/w"), "agg/apply/w");
        assert_eq!(canonical_name("conv.partial"), "conv.partial");
    }

    #[test]
    fn replicas_share_cost_entries() {
        let mut m = CompCostModel::new();
        m.observe("rep0/conv", D0, 2.0);
        assert_eq!(m.get("rep1/conv", D0), Some(2.0));
        assert_eq!(m.max_time("rep7/conv"), Some(2.0));
    }

    #[test]
    fn coverage_check() {
        use fastt_graph::{Graph, OpKind, Operation};
        let mut g = Graph::new();
        g.add_op(Operation::new("a", OpKind::Relu, [1])).unwrap();
        g.add_op(Operation::new("b", OpKind::Relu, [1])).unwrap();
        let mut m = CompCostModel::new();
        m.observe("a", D0, 1.0);
        assert!(!m.covers(&g));
        m.observe("b", D1, 1.0);
        assert!(m.covers(&g));
    }
}
