//! # fastt-cost
//!
//! Adaptive cost models for the FastT reproduction (Sec. 4 of the paper):
//! the **computation** cost model (execution time of a (sub-)operation on a
//! device, keyed by op name and device) and the **communication** cost model
//! (per-device-pair linear regression of tensor size vs. transfer time).
//!
//! Both models are *learned from profiled traces* — the simulator's
//! [`fastt_sim::RunTrace`] plays the role of TensorFlow's `RunMetadata` —
//! never read directly from the hardware ground truth. Bound to a topology
//! ([`CostModels::bind_topology`]), the communication model keys its
//! regressions on link *classes* and composes them along physical routes;
//! unprofiled computation entries stay at zero cost so the algorithms
//! explore (Sec. 4), while unprofiled communication falls back to seeded
//! link-spec priors — treating an unprofiled NIC as free distorts every
//! earliest-finish-time comparison it appears in.
//!
//! # Examples
//!
//! ```
//! use fastt_cluster::{DeviceId, Topology};
//! use fastt_cost::CostModels;
//! use fastt_graph::{Graph, OpKind, Operation};
//! use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};
//!
//! let mut g = Graph::new();
//! let a = g.add_op(Operation::new("a", OpKind::Input, [1 << 20]))?;
//! let b = g.add_op(Operation::new("b", OpKind::Relu, [1 << 20]))?;
//! g.connect(a, b)?;
//! let topo = Topology::single_server(2);
//! let mut p = Placement::uniform(g.op_count(), DeviceId(0));
//! p.set(b, DeviceId(1));
//!
//! let trace = simulate(&g, &topo, &p, &HardwarePerf::new(),
//!                      ExecPolicy::Fifo, &SimConfig::default())?;
//! let mut cost = CostModels::new();
//! cost.update_from_trace(&g, &trace);
//! assert!(cost.comp.get("a", DeviceId(0)).is_some());
//! assert!(cost.comm.predict(DeviceId(0), DeviceId(1), 4 << 20).is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comm;
mod comp;
mod linreg;

pub use comm::{CommCostModel, DEFAULT_DISTRUST_FACTOR};
pub use comp::{canonical_name, CompCostModel};
pub use linreg::LinReg;

use fastt_graph::Graph;
use fastt_sim::RunTrace;
use fastt_telemetry::{jobj, Collector};
use std::sync::Arc;

/// The pair of adaptive cost models FastT maintains (Sec. 3, input (c)).
#[derive(Debug, Clone, Default)]
pub struct CostModels {
    /// Execution time of each (sub-)operation per device.
    pub comp: CompCostModel,
    /// Tensor transfer time per device pair.
    pub comm: CommCostModel,
    collector: Option<Arc<Collector>>,
}

impl CostModels {
    /// Creates empty cost models.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds the communication model to a cluster (see
    /// [`CommCostModel::bind_topology`]): class-keyed fits, route-composed
    /// predictions, and link-spec priors for never-profiled classes. Does
    /// not advance [`CostModels::generation`] unless pre-bind per-pair
    /// samples had to be re-bucketed.
    pub fn bind_topology(&mut self, topo: &fastt_cluster::Topology) {
        self.comm.bind_topology(topo);
    }

    /// Attaches a telemetry collector: each subsequent
    /// [`CostModels::update_from_trace`] scores the *pre-update* models
    /// against the fresh trace (a `cost.error` event plus the `cost.mape`
    /// gauge and `cost.rel_error` histogram).
    pub fn set_collector(&mut self, collector: Arc<Collector>) {
        self.collector = Some(collector);
    }

    /// Ingests one profiled iteration: op records feed the computation
    /// model, transfer records feed the communication model.
    pub fn update_from_trace(&mut self, graph: &Graph, trace: &RunTrace) {
        if let Some(col) = self.collector.clone() {
            self.score_trace(graph, trace, &col);
        }
        self.comp.update_from_trace(graph, trace);
        self.comm.update_from_trace(trace);
    }

    /// Prediction-vs-actual accuracy of the current models on `trace`,
    /// *before* the trace is ingested: mean absolute percentage error over
    /// every record the models can predict.
    fn score_trace(&self, graph: &Graph, trace: &RunTrace, col: &Collector) {
        let mut sum = 0.0f64;
        let mut n = 0u64;
        let mut worst = 0.0f64;
        for r in &trace.op_records {
            let actual = r.duration();
            if actual <= 0.0 {
                continue;
            }
            if let Some(pred) = self.comp.get(&graph.op_ref(r.op).name, r.device) {
                let rel = (pred - actual).abs() / actual;
                col.metrics().observe("cost.rel_error", rel);
                sum += rel;
                worst = worst.max(rel);
                n += 1;
            }
        }
        let mut comm_sum = 0.0f64;
        let mut comm_n = 0u64;
        for t in &trace.transfers {
            let actual = t.duration();
            if actual <= 0.0 {
                continue;
            }
            if let Some(pred) = self.comm.predict(t.src_dev, t.dst_dev, t.bytes) {
                let rel = (pred - actual).abs() / actual;
                col.metrics().observe("cost.rel_error", rel);
                comm_sum += rel;
                worst = worst.max(rel);
                comm_n += 1;
            }
        }
        if n + comm_n == 0 {
            return; // nothing predictable yet (first profile)
        }
        let mape = (sum + comm_sum) / (n + comm_n) as f64;
        col.metrics().set_gauge("cost.mape", mape);
        col.emit(
            "cost.error",
            jobj! {
                "mape" => mape,
                "worst" => worst,
                "comp_samples" => n,
                "comm_samples" => comm_n,
            },
        );
    }

    /// Re-seeds a pessimistic communication prior for one directed hop after
    /// a link health change (see [`CommCostModel::distrust_link`]): the
    /// hop's line is scaled by `factor` via a per-pair override, leaving the
    /// healthy same-class fit untouched. Advances [`CostModels::generation`].
    pub fn distrust_link(
        &mut self,
        src: fastt_cluster::DeviceId,
        dst: fastt_cluster::DeviceId,
        factor: f64,
    ) -> bool {
        self.comm.distrust_link(src, dst, factor)
    }

    /// Drops the distrust override for a directed hop (see
    /// [`CommCostModel::trust_link`]).
    pub fn trust_link(&mut self, src: fastt_cluster::DeviceId, dst: fastt_cluster::DeviceId) {
        self.comm.trust_link(src, dst)
    }

    /// Whether every op of `graph` has at least one profiled execution.
    pub fn covers(&self, graph: &Graph) -> bool {
        self.comp.covers(graph)
    }

    /// Whether computation times have drifted less than `eps` (relative)
    /// since the last [`CostModels::snapshot`] — the paper's pre-training
    /// termination condition.
    pub fn is_stable(&self, eps: f64) -> bool {
        self.comp.max_drift() <= eps
    }

    /// Remembers current means for the next stability check.
    pub fn snapshot(&mut self) {
        self.comp.snapshot();
    }

    /// Combined monotonic model generation: advances whenever the
    /// computation model absorbs a real measurement or the communication
    /// model refits its per-pair lines. Analytic seeding
    /// ([`CompCostModel::seed`]) deliberately does *not* advance it — seeds
    /// are derived from existing knowledge and never invalidate a cached
    /// plan on their own.
    pub fn generation(&self) -> u64 {
        self.comp.generation() + self.comm.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastt_cluster::{DeviceId, Topology};
    use fastt_graph::{OpKind, Operation};
    use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

    fn tiny() -> (Graph, Topology, Placement) {
        let mut g = Graph::new();
        let a = g
            .add_op(Operation::new("a", OpKind::Input, [1 << 20]))
            .unwrap();
        let b = g
            .add_op(Operation::new("b", OpKind::MatMul, [1 << 18]).with_flops(1 << 30))
            .unwrap();
        g.connect(a, b).unwrap();
        let topo = Topology::single_server(2);
        let mut p = Placement::uniform(g.op_count(), DeviceId(0));
        p.set(b, DeviceId(1));
        (g, topo, p)
    }

    #[test]
    fn bootstraps_from_trace() {
        let (g, topo, p) = tiny();
        let trace = simulate(
            &g,
            &topo,
            &p,
            &HardwarePerf::new(),
            ExecPolicy::Fifo,
            &SimConfig::default(),
        )
        .unwrap();
        let mut cm = CostModels::new();
        assert!(!cm.covers(&g));
        cm.update_from_trace(&g, &trace);
        assert!(cm.covers(&g));
        assert_eq!(cm.comm.pair_count(), 1);
    }

    #[test]
    fn learned_times_match_ground_truth() {
        let (g, topo, p) = tiny();
        let hw = HardwarePerf::new();
        let trace = simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &SimConfig::default()).unwrap();
        let mut cm = CostModels::new();
        cm.update_from_trace(&g, &trace);
        let learned = cm.comp.get("b", DeviceId(1)).unwrap();
        let truth = hw.exec_time(&g, g.by_name("b").unwrap(), topo.device(DeviceId(1)));
        assert!((learned - truth).abs() / truth < 1e-9);
    }

    #[test]
    fn stability_after_repeated_identical_runs() {
        let (g, topo, p) = tiny();
        let hw = HardwarePerf::new();
        let mut cm = CostModels::new();
        let trace = simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &SimConfig::default()).unwrap();
        cm.update_from_trace(&g, &trace);
        cm.snapshot();
        cm.update_from_trace(&g, &trace);
        assert!(cm.is_stable(0.01));
    }

    #[test]
    fn generation_tracks_measurements_not_seeds() {
        let (g, topo, p) = tiny();
        let mut cm = CostModels::new();
        assert_eq!(cm.generation(), 0);

        // seeding is an analytic prior, not new knowledge
        cm.comp.seed("b", &[DeviceId(0), DeviceId(1)], 1e-3);
        assert_eq!(cm.generation(), 0);

        // a real observation bumps the computation side
        cm.comp.observe("b", DeviceId(0), 2e-3);
        let after_obs = cm.generation();
        assert!(after_obs > 0);

        // a comm refit bumps the communication side
        cm.comm.refit();
        assert!(cm.generation() > after_obs);

        // trace ingestion (observe + refit) advances it too
        let before = cm.generation();
        let trace = simulate(
            &g,
            &topo,
            &p,
            &HardwarePerf::new(),
            ExecPolicy::Fifo,
            &SimConfig::default(),
        )
        .unwrap();
        cm.update_from_trace(&g, &trace);
        assert!(cm.generation() > before);
    }

    #[test]
    fn jittered_runs_converge_with_more_samples() {
        let (g, topo, p) = tiny();
        let hw = HardwarePerf::new();
        let mut cm = CostModels::new();
        for it in 0..30 {
            let cfg = SimConfig {
                jitter_pct: 0.05,
                iteration: it,
                ..SimConfig::default()
            };
            let trace = simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &cfg).unwrap();
            cm.update_from_trace(&g, &trace);
        }
        let learned = cm.comp.get("b", DeviceId(1)).unwrap();
        let truth = hw.exec_time(&g, g.by_name("b").unwrap(), topo.device(DeviceId(1)));
        // mean of ±5% jitter over 30 samples should be within ~3%
        assert!((learned - truth).abs() / truth < 0.03);
    }
}
