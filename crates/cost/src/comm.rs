//! The communication cost model: tensor transfer time, fitted by linear
//! regression over profiled transfers (Sec. 4: "we gather tensors across the
//! same source-destination device pairs into one group. For each group, we
//! use linear regression to obtain a linear model: tensor size vs. transfer
//! time").
//!
//! Unbound (no topology attached) the model keys regressions on `(src, dst)`
//! device *pairs*, exactly as the paper describes. Once
//! [`CommCostModel::bind_topology`] attaches a cluster, regressions are keyed
//! on the **hardware class** of the link instead
//! ([`fastt_cluster::LinkClass`]: nvlink/pcie/eth/rdma) and predictions for a
//! pair are composed along its physical route ([`Topology::route`]) — one
//! observation on any NVLink edge informs every NVLink edge, so 4 fits cover
//! what per-pair keying would need O(n²) profiled pairs for. Analytic priors
//! seeded from the [`Link`] specs answer for classes never profiled, so the
//! very first DPOS pass already ranks with non-zero communication costs.

use crate::linreg::LinReg;
use fastt_cluster::{DeviceId, Link, LinkClass, Topology};
use fastt_sim::RunTrace;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Pessimism factor a distrusted hop's line is scaled by when no explicit
/// factor is given (see [`CommCostModel::distrust_link`]).
pub const DEFAULT_DISTRUST_FACTOR: f64 = 8.0;

/// Maximum retained samples per regression key (new data replaces the
/// oldest, so the model adapts to changing congestion).
const MAX_SAMPLES_PER_KEY: usize = 512;

/// Fraction of the worst-residual samples discarded per refit; keeps a few
/// transfers profiled during a straggler/degraded-link window from skewing
/// the fitted line (see [`LinReg::fit_trimmed`]).
const TRIM_FRAC: f64 = 0.1;

/// Regression key: link class when the model is bound to a topology and the
/// edge is a recognizable single link, device pair otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CommKey {
    Class(LinkClass),
    Pair(DeviceId, DeviceId),
}

/// Transfer-time model: per-link-class fits composed along routes when bound
/// to a topology, per-device-pair fits otherwise.
#[derive(Debug, Clone, Default)]
pub struct CommCostModel {
    samples: HashMap<CommKey, Vec<(f64, f64)>>,
    fits: HashMap<CommKey, LinReg>,
    /// Analytic per-class priors from the bound topology's [`Link`] specs
    /// (slowest spec per class). Consulted only when a class has no fit;
    /// seeding them does not advance [`CommCostModel::generation`].
    priors: HashMap<LinkClass, LinReg>,
    /// The cluster this model predicts for, once bound. Routing and link
    /// classification come from here.
    topo: Option<Topology>,
    /// Distinct route shapes (hop-class sequences) present in the bound
    /// topology — precomputed so [`CommCostModel::max_comm`] is O(shapes)
    /// instead of O(n²) per call.
    route_shapes: Vec<Vec<LinkClass>>,
    /// Monotonic counter bumped on every [`CommCostModel::refit`]; cached
    /// plans keyed on an older generation are stale once the lines move.
    generation: u64,
    /// Pessimistic per-directed-pair override lines installed by
    /// [`CommCostModel::distrust_link`] when the session marks a link
    /// degraded or failed. Consulted *before* the class fit, so one sick
    /// link prices pessimistically without poisoning the healthy same-class
    /// fit every other link answers from. BTreeMap for deterministic
    /// iteration in [`CommCostModel::distrusted_pairs`].
    distrust: BTreeMap<(DeviceId, DeviceId), LinReg>,
}

impl CommCostModel {
    /// Creates an empty, unbound model (per-pair keying).
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds the model to a cluster: future observations are bucketed by
    /// link class, predictions compose class fits along physical routes, and
    /// analytic priors are seeded from the topology's [`Link`] specs
    /// (pessimistically, from the slowest spec per class). Existing per-pair
    /// samples are re-bucketed into classes; if any exist the model refits
    /// (advancing the generation), otherwise the generation is untouched —
    /// priors are seeds, not measurements.
    pub fn bind_topology(&mut self, topo: &Topology) {
        let mut priors: HashMap<LinkClass, LinReg> = HashMap::new();
        let mut shapes: HashSet<Vec<LinkClass>> = HashSet::new();
        for s in topo.device_ids() {
            for d in topo.device_ids() {
                if let (Some(l), Some(c)) = (topo.link(s, d), topo.link_class(s, d)) {
                    let prior = Self::prior_of(l);
                    priors
                        .entry(c)
                        .and_modify(|p| {
                            // slowest spec per class = pessimistic prior
                            if prior.predict(1e6) > p.predict(1e6) {
                                *p = prior;
                            }
                        })
                        .or_insert(prior);
                }
                let shape: Vec<LinkClass> = topo
                    .route(s, d)
                    .iter()
                    .filter_map(|&(a, b)| topo.link_class(a, b))
                    .collect();
                if !shape.is_empty() {
                    shapes.insert(shape);
                }
            }
        }
        self.priors = priors;
        self.route_shapes = shapes.into_iter().collect();
        self.route_shapes.sort();
        self.topo = Some(topo.clone());

        // Re-bucket any pre-bind per-pair samples under their link class.
        let pairs: Vec<(DeviceId, DeviceId)> = self
            .samples
            .keys()
            .filter_map(|k| match k {
                CommKey::Pair(s, d) => Some((*s, *d)),
                CommKey::Class(_) => None,
            })
            .collect();
        let mut moved = false;
        for (s, d) in pairs {
            if let Some(c) = self.class_key(s, d) {
                if let Some(pts) = self.samples.remove(&CommKey::Pair(s, d)) {
                    let v = self.samples.entry(CommKey::Class(c)).or_default();
                    v.extend(pts);
                    let overflow = v.len().saturating_sub(MAX_SAMPLES_PER_KEY);
                    v.drain(..overflow);
                    moved = true;
                }
            }
        }
        if moved {
            self.refit();
        }
    }

    /// Whether [`CommCostModel::bind_topology`] has been called.
    pub fn is_bound(&self) -> bool {
        self.topo.is_some()
    }

    /// The analytic prior line of a link spec: intercept = latency,
    /// slope = 1/bandwidth, zero observations behind it.
    fn prior_of(l: &Link) -> LinReg {
        LinReg {
            slope: 1.0 / l.bandwidth,
            intercept: l.latency,
            n: 0,
        }
    }

    /// The class key a `src → dst` observation lands under, when the bound
    /// topology recognizes the edge as one direct link.
    fn class_key(&self, src: DeviceId, dst: DeviceId) -> Option<LinkClass> {
        self.topo.as_ref()?.link_class(src, dst)
    }

    /// Records one observed transfer of `bytes` from `src` to `dst` taking
    /// `secs`. Bound models bucket the sample under the link's hardware
    /// class (the simulator records transfers hop-by-hop, so each
    /// observation is a single physical link); edges the topology cannot
    /// classify — and all edges of unbound models — stay per-pair.
    pub fn observe(&mut self, src: DeviceId, dst: DeviceId, bytes: u64, secs: f64) {
        let key = match self.class_key(src, dst) {
            Some(c) => CommKey::Class(c),
            None => CommKey::Pair(src, dst),
        };
        let v = self.samples.entry(key).or_default();
        if v.len() >= MAX_SAMPLES_PER_KEY {
            v.remove(0);
        }
        v.push((bytes as f64, secs));
    }

    /// Ingests every transfer record of a profiled iteration and refits
    /// all models ("in each update of the cost model, newly collected data
    /// are fed and parameters of the linear model are re-computed").
    pub fn update_from_trace(&mut self, trace: &RunTrace) {
        for t in &trace.transfers {
            self.observe(t.src_dev, t.dst_dev, t.bytes, t.duration());
        }
        self.refit();
    }

    /// Recomputes every key's regression from its current samples: a
    /// trimmed (straggler-robust) least-squares fit, falling back to the
    /// proportional prior when every retained transfer of a key has the
    /// same size (the slope is unidentifiable, so `LinReg::fit` refuses).
    pub fn refit(&mut self) {
        self.generation += 1;
        self.fits = self
            .samples
            .iter()
            .filter_map(|(k, pts)| {
                LinReg::fit_trimmed(pts, TRIM_FRAC)
                    .or_else(|| LinReg::proportional(pts))
                    .map(|f| (*k, f))
            })
            .collect();
    }

    /// The best available line for one physical hop: distrust override
    /// first, then trained class fit, else per-pair fit, else the seeded
    /// class prior.
    fn hop_line(&self, src: DeviceId, dst: DeviceId) -> Option<&LinReg> {
        if let Some(l) = self.distrust.get(&(src, dst)) {
            return Some(l);
        }
        if let Some(c) = self.class_key(src, dst) {
            if let Some(f) = self.fits.get(&CommKey::Class(c)) {
                return Some(f);
            }
            if let Some(f) = self.fits.get(&CommKey::Pair(src, dst)) {
                return Some(f);
            }
            return self.priors.get(&c);
        }
        self.fits.get(&CommKey::Pair(src, dst))
    }

    /// The best available line for a route *shape* (sequence of hop
    /// classes): fit else prior per hop, summed by the caller.
    fn class_line(&self, c: LinkClass) -> Option<&LinReg> {
        self.fits
            .get(&CommKey::Class(c))
            .or_else(|| self.priors.get(&c))
    }

    /// Predicted transfer time for `bytes` from `src` to `dst`.
    ///
    /// Returns 0 for intra-device "transfers". Bound models sum hop
    /// predictions along the *health-aware* physical route
    /// ([`Topology::try_route`]), answering from class fits and falling back
    /// to the seeded priors for classes never profiled — so a bound model
    /// always has a (non-zero) opinion about connected pairs. A pair the
    /// topology cannot route around dead links for prices as
    /// `Some(f64::INFINITY)`, so planners rank any reachable placement above
    /// one that needs a dead link. Unbound models return `None` for pairs
    /// never profiled.
    pub fn predict(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> Option<f64> {
        if src == dst {
            return Some(0.0);
        }
        match &self.topo {
            Some(topo) => {
                let Some(route) = topo.try_route(src, dst) else {
                    return Some(f64::INFINITY);
                };
                if route.is_empty() {
                    return Some(0.0);
                }
                let mut total = 0.0;
                for (a, b) in route {
                    total += self.hop_line(a, b)?.predict(bytes as f64);
                }
                Some(total)
            }
            None => self
                .fits
                .get(&CommKey::Pair(src, dst))
                .map(|f| f.predict(bytes as f64)),
        }
    }

    /// Predicted duration of a ring all-reduce of `bytes` (the full gradient
    /// size) over `participants`: `2(n−1)` phases, each moving `bytes/n` on
    /// every ring hop simultaneously, paced by the slowest hop — the
    /// standard `2(n−1)/n × bytes` bound, priced by the same per-class fits
    /// point-to-point predictions use.
    ///
    /// Returns 0 for fewer than two participants, `None` when some ring hop
    /// has no fit (only possible unbound).
    pub fn predict_allreduce(&self, participants: &[DeviceId], bytes: u64) -> Option<f64> {
        let n = participants.len();
        if n < 2 {
            return Some(0.0);
        }
        let chunk = bytes.div_ceil(n as u64);
        let mut slowest = 0.0f64;
        for i in 0..n {
            let (src, dst) = (participants[i], participants[(i + 1) % n]);
            slowest = slowest.max(self.predict(src, dst, chunk)?);
        }
        Some(2.0 * (n as f64 - 1.0) * slowest)
    }

    /// The pessimistic `c̄` used by the rank computation: the maximal
    /// predicted transfer time of `bytes` over the cluster. Bound models
    /// take the worst route shape priced by fits-else-priors (non-zero from
    /// the very first pass); unbound models fall back to the old behavior —
    /// the worst profiled pair, 0 when nothing is profiled yet.
    pub fn max_comm(&self, bytes: u64) -> f64 {
        if self.topo.is_some() {
            return self
                .route_shapes
                .iter()
                .map(|shape| {
                    shape
                        .iter()
                        .filter_map(|&c| self.class_line(c))
                        .map(|f| f.predict(bytes as f64))
                        .sum()
                })
                .fold(0.0, f64::max);
        }
        self.fits
            .values()
            .map(|f| f.predict(bytes as f64))
            .fold(0.0, f64::max)
    }

    /// Number of trained regressions (link classes once bound, device pairs
    /// before that).
    pub fn pair_count(&self) -> usize {
        self.fits.len()
    }

    /// The trained line answering for `src → dst`, if any: the pair's fit
    /// on unbound models, the direct link's class fit on bound ones.
    /// Seeded priors are not reported here — this is the *trained* model.
    pub fn fit_for(&self, src: DeviceId, dst: DeviceId) -> Option<&LinReg> {
        if let Some(c) = self.class_key(src, dst) {
            if let Some(f) = self.fits.get(&CommKey::Class(c)) {
                return Some(f);
            }
        }
        self.fits.get(&CommKey::Pair(src, dst))
    }

    /// Re-seeds a pessimistic prior for one *directed* hop after a link
    /// health change: the hop's current best line (class fit, pair fit, or
    /// prior — whatever [`CommCostModel::predict`] would have used) is
    /// snapshotted, scaled by `factor`, and installed as a per-pair override
    /// consulted before the class fit. The healthy same-class fit is
    /// untouched, so sibling links keep answering from real measurements.
    ///
    /// Distrusting an already-distrusted hop compounds (the override is
    /// scaled again), mirroring [`Topology::degrade_link`]. Advances
    /// [`CommCostModel::generation`] — cached plans priced with the
    /// trusting line are stale. Returns `false` (and changes nothing) when
    /// the model has no line at all for the hop, which only happens unbound
    /// with no profiled samples.
    pub fn distrust_link(&mut self, src: DeviceId, dst: DeviceId, factor: f64) -> bool {
        assert!(factor > 0.0, "distrust factor must be positive");
        if let Some(l) = self.distrust.get_mut(&(src, dst)) {
            l.slope *= factor;
            l.intercept *= factor;
            self.generation += 1;
            return true;
        }
        let Some(base) = self.hop_line(src, dst).copied() else {
            return false;
        };
        self.distrust.insert(
            (src, dst),
            LinReg {
                slope: base.slope * factor,
                intercept: base.intercept * factor,
                n: 0,
            },
        );
        self.generation += 1;
        true
    }

    /// Drops the distrust override for a directed hop (the link healed or
    /// fresh measurements re-earned trust); predictions fall back to the
    /// fit→prior chain. Advances the generation only when an override was
    /// actually removed.
    pub fn trust_link(&mut self, src: DeviceId, dst: DeviceId) {
        if self.distrust.remove(&(src, dst)).is_some() {
            self.generation += 1;
        }
    }

    /// Whether a directed hop currently prices from a distrust override.
    pub fn is_distrusted(&self, src: DeviceId, dst: DeviceId) -> bool {
        self.distrust.contains_key(&(src, dst))
    }

    /// Every distrusted directed hop, in deterministic id order.
    pub fn distrusted_pairs(&self) -> Vec<(DeviceId, DeviceId)> {
        self.distrust.keys().copied().collect()
    }

    /// Monotonic refit generation: bumped once per [`CommCostModel::refit`]
    /// and once per installed/compounded/removed distrust override
    /// ([`CommCostModel::distrust_link`] / [`CommCostModel::trust_link`]).
    /// Binding a topology and seeding priors do not advance it — plan-cache
    /// fingerprints only move when the model's *answers* do.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DeviceId = DeviceId(0);
    const D1: DeviceId = DeviceId(1);

    #[test]
    fn learns_linear_link_model() {
        let mut m = CommCostModel::new();
        // latency 1ms, 1 GB/s
        for mb in [1u64, 4, 16, 64] {
            let bytes = mb << 20;
            m.observe(D0, D1, bytes, 1e-3 + bytes as f64 / 1e9);
        }
        m.refit();
        let f = m.fit_for(D0, D1).unwrap();
        assert!(
            (f.intercept - 1e-3).abs() < 1e-5,
            "intercept {}",
            f.intercept
        );
        assert!((f.slope - 1e-9).abs() < 1e-12, "slope {}", f.slope);
        let p = m.predict(D0, D1, 32 << 20).unwrap();
        assert!((p - (1e-3 + (32 << 20) as f64 / 1e9)).abs() < 1e-5);
    }

    #[test]
    fn intra_device_is_free() {
        let m = CommCostModel::new();
        assert_eq!(m.predict(D0, D0, 1 << 30), Some(0.0));
    }

    #[test]
    fn unseen_pair_is_none() {
        let m = CommCostModel::new();
        assert_eq!(m.predict(D0, D1, 1024), None);
    }

    #[test]
    fn max_comm_over_pairs() {
        let mut m = CommCostModel::new();
        m.observe(D0, D1, 1 << 20, 0.001);
        m.observe(D1, D0, 1 << 20, 0.010); // slower reverse path
        m.refit();
        let worst = m.max_comm(1 << 20);
        assert!((worst - 0.010).abs() < 1e-9);
    }

    #[test]
    fn sample_window_bounded() {
        let mut m = CommCostModel::new();
        for i in 0..(MAX_SAMPLES_PER_KEY + 100) {
            m.observe(D0, D1, i as u64, 1.0);
        }
        assert_eq!(m.samples[&CommKey::Pair(D0, D1)].len(), MAX_SAMPLES_PER_KEY);
    }

    #[test]
    fn bound_model_answers_everything_from_priors_without_generation_bump() {
        let mut m = CommCostModel::new();
        m.bind_topology(&Topology::multi_server(2, 2));
        assert_eq!(m.generation(), 0, "priors are seeds, not measurements");
        // never profiled, yet every connected pair has a non-zero opinion
        let intra = m.predict(D0, D1, 1 << 20).unwrap();
        let inter = m.predict(D0, DeviceId(2), 1 << 20).unwrap();
        assert!(intra > 0.0);
        assert!(
            inter > intra,
            "3-hop cross-server route must cost more than NVLink: {inter} vs {intra}"
        );
        // satellite fix: c̄ is non-zero before the first profiled iteration
        assert!(m.max_comm(1 << 20) > 0.0);
        // the worst shape is the staged cross-server route
        let want =
            Link::pcie().transfer_time(1 << 20) * 2.0 + Link::rdma_100g().transfer_time(1 << 20);
        assert!((m.max_comm(1 << 20) - want).abs() < 1e-9);
    }

    #[test]
    fn class_fit_generalizes_to_unobserved_same_class_pair() {
        // The acceptance-criteria test: train ONLY on the (0,1) NVLink edge,
        // then predict the never-observed (2,3) NVLink edge. Per-pair keying
        // cannot answer this at all; class keying answers within the
        // trained line's own error band.
        let mut m = CommCostModel::new();
        m.bind_topology(&Topology::single_server(4));
        let (lat, bw) = (4e-6, 50.0e9); // "measured" NVLink: close to spec
        let truth = |bytes: u64| lat + bytes as f64 / bw;
        for mb in [1u64, 2, 8, 32, 128] {
            let b = mb << 20;
            m.observe(D0, D1, b, truth(b));
        }
        m.refit();
        let probe = 16u64 << 20; // interpolated, unobserved size
        let on_trained = m.predict(D0, D1, probe).unwrap();
        let on_unseen = m.predict(DeviceId(2), DeviceId(3), probe).unwrap();
        assert_eq!(
            on_trained, on_unseen,
            "same class ⇒ same line, observed pair or not"
        );
        let rel_err = (on_unseen - truth(probe)).abs() / truth(probe);
        assert!(rel_err < 0.05, "unseen-pair error {rel_err} out of band");
        // ...and the fit overrides the spec prior, which was 48 GB/s
        assert!((m.fit_for(DeviceId(2), DeviceId(3)).unwrap().slope - 1.0 / bw).abs() < 1e-13);
    }

    #[test]
    fn observations_do_not_leak_across_classes() {
        let mut m = CommCostModel::new();
        let topo = Topology::multi_server(2, 2);
        m.bind_topology(&topo);
        // profile only NVLink edges, 10x slower than spec
        for mb in [1u64, 4, 16] {
            let b = mb << 20;
            m.observe(D0, D1, b, 5e-6 + b as f64 / 4.8e9);
        }
        m.refit();
        assert_eq!(m.pair_count(), 1, "one class trained");
        // the RDMA hop of a cross-server route still answers from its prior
        let h0 = topo.host_of(0).unwrap();
        let h1 = topo.host_of(1).unwrap();
        let nic = m.predict(h0, h1, 1 << 20).unwrap();
        let spec = Link::rdma_100g().transfer_time(1 << 20);
        assert!((nic - spec).abs() < 1e-12);
    }

    #[test]
    fn binding_rebuckets_existing_pair_samples() {
        let mut m = CommCostModel::new();
        for mb in [1u64, 4, 16] {
            let b = mb << 20;
            m.observe(D0, D1, b, 1e-5 + b as f64 / 40.0e9);
        }
        m.refit();
        let g = m.generation();
        m.bind_topology(&Topology::single_server(4));
        assert!(m.generation() > g, "re-bucketing moves predictions");
        // the old pair samples now train the NVLink class: an unrelated
        // NVLink pair predicts from them, not from the spec prior
        let p = m.predict(DeviceId(2), DeviceId(3), 8 << 20).unwrap();
        let want = 1e-5 + (8u64 << 20) as f64 / 40.0e9;
        assert!((p - want).abs() / want < 0.05, "got {p}, want {want}");
    }

    #[test]
    fn distrust_overrides_one_pair_without_poisoning_class_fit() {
        let mut m = CommCostModel::new();
        m.bind_topology(&Topology::single_server(4));
        // train the NVLink class from the (0,1) edge
        let truth = |b: u64| 4e-6 + b as f64 / 50.0e9;
        for mb in [1u64, 4, 16, 64] {
            let b = mb << 20;
            m.observe(D0, D1, b, truth(b));
        }
        m.refit();
        let probe = 8u64 << 20;
        let healthy = m.predict(D0, D1, probe).unwrap();

        // distrust the (2,3) hop: its prediction scales, siblings don't
        let g = m.generation();
        assert!(m.distrust_link(DeviceId(2), DeviceId(3), 4.0));
        assert!(m.generation() > g, "distrust must invalidate cached plans");
        assert!(m.is_distrusted(DeviceId(2), DeviceId(3)));
        let sick = m.predict(DeviceId(2), DeviceId(3), probe).unwrap();
        assert!((sick - 4.0 * healthy).abs() / healthy < 1e-9);
        // the directed override does not leak to the reverse direction...
        let reverse = m.predict(DeviceId(3), DeviceId(2), probe).unwrap();
        assert!((reverse - healthy).abs() < 1e-12);
        // ...nor to any other same-class pair
        let sibling = m.predict(D0, D1, probe).unwrap();
        assert!((sibling - healthy).abs() < 1e-12);

        // compounding mirrors Topology::degrade_link
        m.distrust_link(DeviceId(2), DeviceId(3), 2.0);
        let worse = m.predict(DeviceId(2), DeviceId(3), probe).unwrap();
        assert!((worse - 8.0 * healthy).abs() / healthy < 1e-9);

        // trust restores the class fit and bumps the generation again
        let g = m.generation();
        m.trust_link(DeviceId(2), DeviceId(3));
        assert!(m.generation() > g);
        assert!(!m.is_distrusted(DeviceId(2), DeviceId(3)));
        let healed = m.predict(DeviceId(2), DeviceId(3), probe).unwrap();
        assert!((healed - healthy).abs() < 1e-12);
        // trusting an un-distrusted pair is generation-neutral
        let g = m.generation();
        m.trust_link(D0, D1);
        assert_eq!(m.generation(), g);
    }

    #[test]
    fn unreachable_pair_prices_as_infinite() {
        let mut m = CommCostModel::new();
        let mut topo = Topology::multi_server(2, 2);
        let g0 = DeviceId(0);
        let g2 = DeviceId(2);
        let h0 = topo.host_of(0).unwrap();
        let h1 = topo.host_of(1).unwrap();
        // sever every live path from g0 to g2, then rebind so the model
        // prices against the degraded topology
        topo.fail_link(h0, h1);
        topo.fail_link(h1, g2);
        topo.fail_link(h0, g2);
        topo.fail_link(g0, g2);
        m.bind_topology(&topo);
        assert_eq!(m.predict(g0, g2, 1 << 20), Some(f64::INFINITY));
        // pairs with surviving routes still price finitely
        let intra = m.predict(g0, DeviceId(1), 1 << 20).unwrap();
        assert!(intra.is_finite() && intra > 0.0);
        // and an infinite ring hop poisons the whole collective estimate
        // (ring ordered so one hop is the unreachable g0→g2 pair)
        assert_eq!(
            m.predict_allreduce(&[g0, g2], 1 << 20),
            Some(f64::INFINITY),
            "a ring crossing a dead pair must never look attractive"
        );
    }

    #[test]
    fn allreduce_priced_from_class_fits() {
        let mut m = CommCostModel::new();
        m.bind_topology(&Topology::single_server(4));
        let devs: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        let bytes = 64u64 << 20;
        // 2(n−1) phases of bytes/n on the slowest (here: any NVLink) hop
        let phase = m.predict(D0, D1, bytes.div_ceil(4)).unwrap();
        let want = 2.0 * 3.0 * phase;
        let got = m.predict_allreduce(&devs, bytes).unwrap();
        assert!((got - want).abs() < 1e-12);
        // degenerate rings are free; unbound models have no opinion
        assert_eq!(m.predict_allreduce(&devs[..1], bytes), Some(0.0));
        assert_eq!(CommCostModel::new().predict_allreduce(&devs, bytes), None);
    }
}
