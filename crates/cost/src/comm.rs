//! The communication cost model: tensor transfer time between device pairs,
//! fitted by per-pair linear regression over profiled transfers (Sec. 4:
//! "we gather tensors across the same source-destination device pairs into
//! one group. For each group, we use linear regression to obtain a linear
//! model: tensor size vs. transfer time").

use crate::linreg::LinReg;
use fastt_cluster::DeviceId;
use fastt_sim::RunTrace;
use std::collections::HashMap;

/// Maximum retained samples per device pair (new data replaces the oldest,
/// so the model adapts to changing congestion).
const MAX_SAMPLES_PER_PAIR: usize = 512;

/// Fraction of the worst-residual samples discarded per refit; keeps a few
/// transfers profiled during a straggler/degraded-link window from skewing
/// the per-pair line (see [`LinReg::fit_trimmed`]).
const TRIM_FRAC: f64 = 0.1;

/// Per-device-pair transfer-time model.
#[derive(Debug, Clone, Default)]
pub struct CommCostModel {
    samples: HashMap<(DeviceId, DeviceId), Vec<(f64, f64)>>,
    fits: HashMap<(DeviceId, DeviceId), LinReg>,
    /// Monotonic counter bumped on every [`CommCostModel::refit`]; cached
    /// plans keyed on an older generation are stale once the lines move.
    generation: u64,
}

impl CommCostModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed transfer of `bytes` from `src` to `dst` taking
    /// `secs`.
    pub fn observe(&mut self, src: DeviceId, dst: DeviceId, bytes: u64, secs: f64) {
        let v = self.samples.entry((src, dst)).or_default();
        if v.len() >= MAX_SAMPLES_PER_PAIR {
            v.remove(0);
        }
        v.push((bytes as f64, secs));
    }

    /// Ingests every transfer record of a profiled iteration and refits
    /// all per-pair models ("in each update of the cost model, newly
    /// collected data are fed and parameters of the linear model are
    /// re-computed").
    pub fn update_from_trace(&mut self, trace: &RunTrace) {
        for t in &trace.transfers {
            self.observe(t.src_dev, t.dst_dev, t.bytes, t.duration());
        }
        self.refit();
    }

    /// Recomputes every pair's regression from its current samples: a
    /// trimmed (straggler-robust) least-squares fit, falling back to the
    /// proportional prior when every retained transfer of a pair has the
    /// same size (the slope is unidentifiable, so `LinReg::fit` refuses).
    pub fn refit(&mut self) {
        self.generation += 1;
        self.fits = self
            .samples
            .iter()
            .filter_map(|(k, pts)| {
                LinReg::fit_trimmed(pts, TRIM_FRAC)
                    .or_else(|| LinReg::proportional(pts))
                    .map(|f| (*k, f))
            })
            .collect();
    }

    /// Predicted transfer time for `bytes` from `src` to `dst`.
    ///
    /// Returns 0 for intra-device "transfers" and `None` for pairs never
    /// profiled (the algorithms treat missing costs as 0 to encourage
    /// exploration, Sec. 4).
    pub fn predict(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> Option<f64> {
        if src == dst {
            return Some(0.0);
        }
        self.fits.get(&(src, dst)).map(|f| f.predict(bytes as f64))
    }

    /// The pessimistic `c̄` used by the rank computation: the maximal
    /// predicted transfer time of `bytes` over all profiled device pairs.
    pub fn max_comm(&self, bytes: u64) -> f64 {
        self.fits
            .values()
            .map(|f| f.predict(bytes as f64))
            .fold(0.0, f64::max)
    }

    /// Number of profiled device pairs.
    pub fn pair_count(&self) -> usize {
        self.fits.len()
    }

    /// The fitted line for a pair, if profiled.
    pub fn fit_for(&self, src: DeviceId, dst: DeviceId) -> Option<&LinReg> {
        self.fits.get(&(src, dst))
    }

    /// Monotonic refit generation: bumped once per [`CommCostModel::refit`].
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DeviceId = DeviceId(0);
    const D1: DeviceId = DeviceId(1);

    #[test]
    fn learns_linear_link_model() {
        let mut m = CommCostModel::new();
        // latency 1ms, 1 GB/s
        for mb in [1u64, 4, 16, 64] {
            let bytes = mb << 20;
            m.observe(D0, D1, bytes, 1e-3 + bytes as f64 / 1e9);
        }
        m.refit();
        let f = m.fit_for(D0, D1).unwrap();
        assert!(
            (f.intercept - 1e-3).abs() < 1e-5,
            "intercept {}",
            f.intercept
        );
        assert!((f.slope - 1e-9).abs() < 1e-12, "slope {}", f.slope);
        let p = m.predict(D0, D1, 32 << 20).unwrap();
        assert!((p - (1e-3 + (32 << 20) as f64 / 1e9)).abs() < 1e-5);
    }

    #[test]
    fn intra_device_is_free() {
        let m = CommCostModel::new();
        assert_eq!(m.predict(D0, D0, 1 << 30), Some(0.0));
    }

    #[test]
    fn unseen_pair_is_none() {
        let m = CommCostModel::new();
        assert_eq!(m.predict(D0, D1, 1024), None);
    }

    #[test]
    fn max_comm_over_pairs() {
        let mut m = CommCostModel::new();
        m.observe(D0, D1, 1 << 20, 0.001);
        m.observe(D1, D0, 1 << 20, 0.010); // slower reverse path
        m.refit();
        let worst = m.max_comm(1 << 20);
        assert!((worst - 0.010).abs() < 1e-9);
    }

    #[test]
    fn sample_window_bounded() {
        let mut m = CommCostModel::new();
        for i in 0..(MAX_SAMPLES_PER_PAIR + 100) {
            m.observe(D0, D1, i as u64, 1.0);
        }
        assert_eq!(m.samples[&(D0, D1)].len(), MAX_SAMPLES_PER_PAIR);
    }
}
