//! Simple least-squares linear regression, used by the communication cost
//! model ("for each group, we use linear regression to obtain a linear
//! model: tensor size vs. transfer time", Sec. 4).

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinReg {
    /// Seconds per byte.
    pub slope: f64,
    /// Fixed cost in seconds (captures link latency).
    pub intercept: f64,
    /// Number of samples the fit is based on.
    pub n: usize,
}

impl LinReg {
    /// Fits a line to `(x, y)` points by ordinary least squares.
    ///
    /// With exactly one point the fit degenerates to a proportional model
    /// through that point (`slope = y/x`), which is the right prior for
    /// transfer times.
    ///
    /// Returns `None` when `points` is empty, or when two or more points
    /// share (near-)identical `x`: the slope of such a fit is not
    /// identifiable, and the old proportional-through-the-mean answer
    /// silently hid disagreeing `y` measurements behind an arbitrary line.
    /// Callers that want the proportional prior anyway should say so with
    /// [`LinReg::proportional`].
    pub fn fit(points: &[(f64, f64)]) -> Option<LinReg> {
        if points.is_empty() {
            return None;
        }
        if points.len() == 1 {
            return Self::proportional(points);
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        if sxx <= f64::EPSILON * mean_x.abs().max(1.0) {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        Some(LinReg {
            slope,
            intercept,
            n: points.len(),
        })
    }

    /// A proportional (through-origin) model fitted to the mean point:
    /// `slope = ȳ/x̄`, zero intercept. The explicit fallback for degenerate
    /// sample sets where every observed `x` is the same.
    ///
    /// Returns `None` when `points` is empty.
    pub fn proportional(points: &[(f64, f64)]) -> Option<LinReg> {
        if points.is_empty() {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let slope = if mean_x.abs() > f64::EPSILON {
            mean_y / mean_x
        } else {
            0.0
        };
        Some(LinReg {
            slope,
            intercept: 0.0,
            n: points.len(),
        })
    }

    /// Straggler-robust fit: ordinary least squares, then the
    /// `⌊trim_frac · n⌋` points with the largest absolute residuals are
    /// discarded and the line refitted on the rest. A handful of samples
    /// taken during a slowdown window or a re-executed transfer then cannot
    /// drag the model away from the healthy steady state.
    ///
    /// Falls back to the untrimmed fit when too few points would remain
    /// (< 3) for the refit to be meaningful, and returns `None` exactly
    /// when [`LinReg::fit`] does.
    pub fn fit_trimmed(points: &[(f64, f64)], trim_frac: f64) -> Option<LinReg> {
        let full = Self::fit(points)?;
        let drop = (points.len() as f64 * trim_frac.clamp(0.0, 0.5)).floor() as usize;
        if drop == 0 || points.len() - drop < 3 {
            return Some(full);
        }
        let mut by_residual: Vec<usize> = (0..points.len()).collect();
        by_residual.sort_by(|&a, &b| {
            let ra = (points[a].1 - full.slope * points[a].0 - full.intercept).abs();
            let rb = (points[b].1 - full.slope * points[b].0 - full.intercept).abs();
            ra.total_cmp(&rb).then(a.cmp(&b))
        });
        let kept: Vec<(f64, f64)> = by_residual[..points.len() - drop]
            .iter()
            .map(|&i| points[i])
            .collect();
        Self::fit(&kept).or(Some(full))
    }

    /// Predicted `y` at `x`, clamped to be non-negative.
    pub fn predict(&self, x: f64) -> f64 {
        (self.slope * x + self.intercept).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 2.0 * i as f64 + 5.0)).collect();
        let f = LinReg::fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-9);
        assert!((f.intercept - 5.0).abs() < 1e-9);
        assert!((f.predict(20.0) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn single_point_proportional() {
        let f = LinReg::fit(&[(4.0, 8.0)]).unwrap();
        assert!((f.predict(2.0) - 4.0).abs() < 1e-9);
        assert_eq!(f.n, 1);
    }

    #[test]
    fn empty_is_none() {
        assert!(LinReg::fit(&[]).is_none());
        assert!(LinReg::proportional(&[]).is_none());
        assert!(LinReg::fit_trimmed(&[], 0.2).is_none());
    }

    // Pins the degenerate-design contract: two or more samples at the same
    // x leave the slope unidentifiable, and `fit` must refuse rather than
    // invent a line (it used to return a proportional model that averaged
    // away disagreeing y values).
    #[test]
    fn repeated_x_is_none() {
        assert!(LinReg::fit(&[(4.0, 8.0), (4.0, 100.0)]).is_none());
        assert!(LinReg::fit(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).is_none());
        // the explicit fallback still serves the proportional prior
        let p = LinReg::proportional(&[(4.0, 8.0), (4.0, 12.0)]).unwrap();
        assert!((p.predict(2.0) - 5.0).abs() < 1e-9);
        assert_eq!(p.intercept, 0.0);
    }

    #[test]
    fn trimmed_fit_rejects_straggler_outliers() {
        // 20 clean points on y = 2x + 1, plus two samples taken while the
        // link was degraded 10x.
        let mut pts: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        pts.push((5.0, 110.0));
        pts.push((15.0, 310.0));
        let naive = LinReg::fit(&pts).unwrap();
        let robust = LinReg::fit_trimmed(&pts, 0.1).unwrap();
        assert!((robust.slope - 2.0).abs() < 1e-6, "slope {}", robust.slope);
        assert!(
            (robust.intercept - 1.0).abs() < 1e-6,
            "intercept {}",
            robust.intercept
        );
        assert!((naive.slope - 2.0).abs() > 0.5, "naive should be skewed");
    }

    #[test]
    fn trimmed_fit_keeps_small_samples_untrimmed() {
        let pts = [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)];
        let f = LinReg::fit_trimmed(&pts, 0.3).unwrap();
        assert_eq!(f.n, 3);
        assert!((f.slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_close() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.1 } else { -0.1 };
                (x, 3.0 * x + 1.0 + noise)
            })
            .collect();
        let f = LinReg::fit(&pts).unwrap();
        assert!((f.slope - 3.0).abs() < 0.01);
        assert!((f.intercept - 1.0).abs() < 0.2);
    }

    #[test]
    fn prediction_never_negative() {
        let f = LinReg::fit(&[(1.0, 0.0), (2.0, 0.0)]).unwrap();
        assert_eq!(f.predict(-100.0), 0.0);
    }
}
