//! Simple least-squares linear regression, used by the communication cost
//! model ("for each group, we use linear regression to obtain a linear
//! model: tensor size vs. transfer time", Sec. 4).

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinReg {
    /// Seconds per byte.
    pub slope: f64,
    /// Fixed cost in seconds (captures link latency).
    pub intercept: f64,
    /// Number of samples the fit is based on.
    pub n: usize,
}

impl LinReg {
    /// Fits a line to `(x, y)` points by ordinary least squares.
    ///
    /// With one point (or zero x-variance) the fit degenerates to a
    /// proportional model through that point (`slope = y/x`), which is the
    /// right prior for transfer times.
    ///
    /// Returns `None` when `points` is empty.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinReg> {
        if points.is_empty() {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        if sxx <= f64::EPSILON * mean_x.abs().max(1.0) {
            // all x equal: proportional model through the mean point
            let slope = if mean_x.abs() > f64::EPSILON {
                mean_y / mean_x
            } else {
                0.0
            };
            return Some(LinReg {
                slope,
                intercept: 0.0,
                n: points.len(),
            });
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        Some(LinReg {
            slope,
            intercept,
            n: points.len(),
        })
    }

    /// Predicted `y` at `x`, clamped to be non-negative.
    pub fn predict(&self, x: f64) -> f64 {
        (self.slope * x + self.intercept).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 2.0 * i as f64 + 5.0)).collect();
        let f = LinReg::fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-9);
        assert!((f.intercept - 5.0).abs() < 1e-9);
        assert!((f.predict(20.0) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn single_point_proportional() {
        let f = LinReg::fit(&[(4.0, 8.0)]).unwrap();
        assert!((f.predict(2.0) - 4.0).abs() < 1e-9);
        assert_eq!(f.n, 1);
    }

    #[test]
    fn empty_is_none() {
        assert!(LinReg::fit(&[]).is_none());
    }

    #[test]
    fn noisy_fit_close() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.1 } else { -0.1 };
                (x, 3.0 * x + 1.0 + noise)
            })
            .collect();
        let f = LinReg::fit(&pts).unwrap();
        assert!((f.slope - 3.0).abs() < 0.01);
        assert!((f.intercept - 1.0).abs() < 0.2);
    }

    #[test]
    fn prediction_never_negative() {
        let f = LinReg::fit(&[(1.0, 0.0), (2.0, 0.0)]).unwrap();
        assert_eq!(f.predict(-100.0), 0.0);
    }
}
