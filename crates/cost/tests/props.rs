//! Property tests. The offline build environment cannot fetch the external
//! `proptest` crate, so these are compiled only under `--features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests for the cost models.

use fastt_cluster::DeviceId;
use fastt_cost::{canonical_name, CommCostModel, CompCostModel, LinReg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Least squares recovers any line exactly from noiseless points.
    #[test]
    fn linreg_recovers_lines(
        slope in -1e3f64..1e3,
        intercept in -1e3f64..1e3,
        xs in proptest::collection::vec(0.0f64..1e6, 2..50),
    ) {
        // need at least two distinct x values for a well-posed fit
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, slope * x + intercept)).collect();
        let f = LinReg::fit(&pts).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((f.intercept - intercept).abs() < 1.0);
    }

    /// The running mean equals the arithmetic mean of all observations.
    #[test]
    fn comp_mean_matches_observations(ts in proptest::collection::vec(1e-6f64..10.0, 1..64)) {
        let mut m = CompCostModel::new();
        for &t in &ts {
            m.observe("op", DeviceId(0), t);
        }
        let mean = ts.iter().sum::<f64>() / ts.len() as f64;
        let got = m.get("op", DeviceId(0)).unwrap();
        prop_assert!((got - mean).abs() < 1e-9 * mean.max(1.0));
    }

    /// max_time is the max of per-device means.
    #[test]
    fn comp_max_over_devices(times in proptest::collection::vec(1e-6f64..1.0, 1..6)) {
        let mut m = CompCostModel::new();
        for (i, &t) in times.iter().enumerate() {
            m.observe("op", DeviceId(i as u16), t);
        }
        let expected = times.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((m.max_time("op").unwrap() - expected).abs() < 1e-12);
    }

    /// Canonicalization is idempotent and never panics on arbitrary names.
    #[test]
    fn canonical_name_idempotent(name in "[a-zA-Z0-9_/.#]{0,40}") {
        let once = canonical_name(&name);
        let twice = canonical_name(&once);
        prop_assert_eq!(once, twice);
    }

    /// Replica prefixes of any index canonicalize to the same key.
    #[test]
    fn replicas_share_keys(k in 0u32..1000, name in "[a-z][a-z0-9_/]{0,20}") {
        prop_assert_eq!(
            canonical_name(&format!("rep{k}/{name}")),
            canonical_name(&name)
        );
    }

    /// Comm predictions are monotone in bytes once fitted on an increasing
    /// line (physical links: more bytes never arrive sooner).
    #[test]
    fn comm_monotone_in_bytes(bw in 1e8f64..1e11, lat in 0.0f64..1e-3) {
        let mut m = CommCostModel::new();
        for kb in [1u64, 8, 64, 512, 4096] {
            let bytes = kb << 10;
            m.observe(DeviceId(0), DeviceId(1), bytes, lat + bytes as f64 / bw);
        }
        m.refit();
        let mut last = -1.0f64;
        for kb in [2u64, 16, 128, 1024] {
            let p = m.predict(DeviceId(0), DeviceId(1), kb << 10).unwrap();
            prop_assert!(p >= last);
            last = p;
        }
    }
}
