//! Delta-debugging minimizer: shrinks a violating [`Scenario`] along
//! every generation axis until no single reduction preserves the
//! violation.
//!
//! The reduction moves mirror the generator's axes exactly — drop a
//! graph layer, simplify a layer to a dense stub, remove a fault or
//! lifecycle event, drop a fleet job, shrink the topology by a GPU or a
//! server, halve the iteration budget or the batch — so every
//! intermediate candidate is a scenario the generator could have
//! produced, and the final reproducer replays through the ordinary
//! [`crate::replay`] path with nothing special-cased.
//!
//! Greedy fixpoint search: each pass tries every single-step reduction
//! in a fixed order and keeps the first one under which the *same
//! invariant family* still fires (a reduction that flips the failure to
//! a different family is rejected — it would minimize to a different
//! bug). Passes repeat until none applies. The oracle is deterministic,
//! so the minimizer is too: the same violating scenario always shrinks
//! to the same reproducer.

use crate::oracle::{check, Sabotage};
use crate::scenario::{LayerSpec, Scenario};

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The smallest scenario found that still violates the family.
    pub scenario: Scenario,
    /// The invariant family the reproducer violates.
    pub family: &'static str,
    /// Oracle invocations spent shrinking.
    pub checks: usize,
}

/// Every single-step reduction of `sc`, most aggressive first.
fn reductions(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if !sc.jobs.is_empty() {
        let mut c = sc.clone();
        c.jobs.clear();
        out.push(c);
        for i in 0..sc.jobs.len() {
            let mut c = sc.clone();
            c.jobs.remove(i);
            out.push(c);
        }
    }
    for i in 0..sc.faults.len() {
        let mut c = sc.clone();
        c.faults.remove(i);
        out.push(c);
    }
    for i in 0..sc.lifecycle.len() {
        let mut c = sc.clone();
        c.lifecycle.remove(i);
        out.push(c);
    }
    if sc.graph.layers.len() > 1 {
        for i in 0..sc.graph.layers.len() {
            let mut c = sc.clone();
            c.graph.layers.remove(i);
            out.push(c);
        }
    }
    for (i, l) in sc.graph.layers.iter().enumerate() {
        if !matches!(l, LayerSpec::Dense { width: 8 }) {
            let mut c = sc.clone();
            c.graph.layers[i] = LayerSpec::Dense { width: 8 };
            out.push(c);
        }
    }
    if sc.graph.conv_prefix > 0 {
        let mut c = sc.clone();
        c.graph.conv_prefix -= 1;
        out.push(c);
    }
    if sc.topo.servers > 1 {
        let mut c = sc.clone();
        c.topo.servers -= 1;
        out.push(c);
    }
    if sc.topo.gpus > 1 {
        let mut c = sc.clone();
        c.topo.gpus -= 1;
        out.push(c);
    }
    if sc.iters > 4 {
        let mut c = sc.clone();
        c.iters = (sc.iters / 2).max(4);
        out.push(c);
    }
    if sc.graph.batch > 2 {
        let mut c = sc.clone();
        c.graph.batch = (sc.graph.batch / 2).max(2);
        out.push(c);
    }
    for c in &mut out {
        c.sanitize();
    }
    out
}

/// Shrinks `sc` — already known to violate `family` under `sabotage` —
/// to a locally minimal reproducer. `budget` caps oracle invocations
/// (each one is a full scenario run); the best candidate so far is
/// returned when it runs out.
pub fn minimize(
    sc: &Scenario,
    sabotage: Sabotage,
    family: &'static str,
    budget: usize,
) -> Minimized {
    let still_fails = |c: &Scenario| check(c, sabotage, None).iter().any(|v| v.family == family);
    let mut best = sc.clone();
    let mut checks = 0usize;
    'passes: loop {
        for cand in reductions(&best) {
            if checks >= budget {
                break 'passes;
            }
            checks += 1;
            if still_fails(&cand) {
                best = cand;
                continue 'passes; // restart the pass from the smaller scenario
            }
        }
        break; // full pass with no keepable reduction: locally minimal
    }
    Minimized {
        scenario: best,
        family,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::PLACEMENT_VALIDITY;

    #[test]
    fn minimizes_sabotaged_scenario_to_tiny_reproducer() {
        // Find a generated scenario the placement sabotage fires on.
        let sc = (0..8)
            .map(|i| Scenario::generate(7, i))
            .find(|sc| {
                check(sc, Sabotage::Placement, None)
                    .iter()
                    .any(|v| v.family == PLACEMENT_VALIDITY)
            })
            .expect("placement sabotage should fire on some generated scenario");
        let min = minimize(&sc, Sabotage::Placement, PLACEMENT_VALIDITY, 200);
        assert!(
            min.scenario.faults.len() <= 3,
            "faults: {:?}",
            min.scenario.faults
        );
        assert!(
            min.scenario.graph.forward_op_count() <= 8,
            "forward ops: {}",
            min.scenario.graph.forward_op_count()
        );
        // Determinism: minimizing again lands on the same reproducer.
        let again = minimize(&sc, Sabotage::Placement, PLACEMENT_VALIDITY, 200);
        assert_eq!(
            crate::replay::to_text(&min.scenario),
            crate::replay::to_text(&again.scenario)
        );
        // And the reproducer still fails.
        assert!(check(&min.scenario, Sabotage::Placement, None)
            .iter()
            .any(|v| v.family == PLACEMENT_VALIDITY));
    }
}
