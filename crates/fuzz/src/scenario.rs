//! The fuzzer's scenario model: one value per axis of the scenario space
//! (graph shape, topology, fault/lifecycle schedule, planner choice, fleet
//! workload), each axis independently generatable from a [`SeedStream`]
//! and independently shrinkable by the minimizer.
//!
//! Everything is plain integers so the replay codec ([`crate::replay`])
//! round-trips scenarios exactly: fault factors are stored ×10, flap
//! probabilities as percentages.

use fastt_cluster::{Device, DeviceId, Topology, TopologyBuilder};
use fastt_graph::{build_training_graph, Graph};
use fastt_models::LayerStack;
use fastt_sim::seed::{domains, SeedStream};
use fastt_sim::{Fault, FaultKind, FaultSchedule, LifecycleEvent, LifecycleKind};

/// One unit of the layer grammar. The grammar spans the shapes the paper's
/// planners are sensitive to: plain chains (`Dense`), width fan-outs that
/// re-join (`Fan`), residual stacked blocks (`Block`), and normalization
/// layers that break splittability (`Norm`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerSpec {
    /// A fully-connected layer of the given width.
    Dense {
        /// Output features.
        width: u64,
    },
    /// `branches` parallel fully-connected layers concatenated back
    /// together (inception-style width).
    Fan {
        /// Per-branch output features.
        width: u64,
        /// Parallel branches (≥ 2).
        branches: u64,
    },
    /// A residual block: two width-preserving dense layers with a ReLU
    /// between, added back onto the input.
    Block,
    /// Layer normalization (not splittable — exercises the planners'
    /// non-splittable paths).
    Norm,
}

/// Seed-derived graph shape: an optional convolutional stem on an 8×8×3
/// image, then a run of grammar layers on the flattened features.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Mini-batch size.
    pub batch: u64,
    /// Convolutional stem layers (0–2) before the flatten.
    pub conv_prefix: u8,
    /// Grammar layers after the (possibly empty) stem.
    pub layers: Vec<LayerSpec>,
}

impl GraphSpec {
    /// Builds the forward graph the spec describes.
    pub fn forward(&self) -> Graph {
        let mut s = if self.conv_prefix > 0 {
            let mut s = LayerStack::new("in", [self.batch, 8, 8, 3]);
            for i in 0..self.conv_prefix {
                s.conv(&format!("stem{i}"), 4 << i, 3, 1);
                s.relu(&format!("stem{i}_relu"));
            }
            s.flatten();
            s
        } else {
            LayerStack::new("in", [self.batch, 16])
        };
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                LayerSpec::Dense { width } => {
                    s.fc(&format!("l{i}_fc"), *width);
                }
                LayerSpec::Fan { width, branches } => {
                    let fork = s.mark();
                    let mut arms = Vec::new();
                    for b in 0..*branches {
                        s.goto(&fork);
                        s.fc(&format!("l{i}_b{b}"), *width);
                        arms.push(s.mark());
                    }
                    let (first, rest) = arms.split_first().expect("branches >= 2");
                    s.goto(first);
                    s.concat(&format!("l{i}_join"), rest);
                }
                LayerSpec::Block => {
                    let w = s.shape().dim(s.shape().rank() - 1);
                    let skip = s.mark();
                    s.fc(&format!("l{i}_fc_a"), w);
                    s.relu(&format!("l{i}_relu"));
                    s.fc(&format!("l{i}_fc_b"), w);
                    s.add_residual(&format!("l{i}_res"), &skip);
                }
                LayerSpec::Norm => {
                    s.layer_norm(&format!("l{i}_ln"));
                }
            }
        }
        s.finish_with_loss("loss")
    }

    /// Builds the per-iteration training graph (forward + backward +
    /// optimizer), the graph every scenario actually plans and runs.
    pub fn training(&self) -> Graph {
        build_training_graph(&self.forward()).expect("grammar produces valid DAGs")
    }

    /// Number of ops in the forward graph — the "graph ops" budget the
    /// minimizer reports (the training graph is a fixed multiple of it).
    pub fn forward_op_count(&self) -> usize {
        self.forward().op_count()
    }
}

/// Link wiring profile for generated topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkProfile {
    /// NVLink intra-server, 25 GbE inter-server (the default
    /// `Topology::multi_server` wiring).
    Nvlink,
    /// PCIe everywhere intra-server (older hosts), 25 GbE inter-server.
    Pcie,
    /// NVLink intra-server with 100 G RDMA between servers.
    Rdma,
}

impl LinkProfile {
    /// Stable lowercase label for the replay codec.
    pub fn as_str(self) -> &'static str {
        match self {
            LinkProfile::Nvlink => "nvlink",
            LinkProfile::Pcie => "pcie",
            LinkProfile::Rdma => "rdma",
        }
    }
}

/// Seed-derived topology shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSpec {
    /// Server count (≥ 1).
    pub servers: u16,
    /// GPUs per server (≥ 1).
    pub gpus: u16,
    /// Link classes.
    pub links: LinkProfile,
}

impl TopoSpec {
    /// Total GPU count.
    pub fn total_gpus(&self) -> u16 {
        self.servers * self.gpus
    }

    /// Builds the topology. Matches `Topology::multi_server`'s GPU-first
    /// id layout (GPU ids `0..servers*gpus`, hosts after) so device ids
    /// drawn by the fault axis line up.
    pub fn build(&self) -> Topology {
        if matches!(self.links, LinkProfile::Nvlink) {
            return Topology::multi_server(self.servers, self.gpus);
        }
        use fastt_cluster::Link;
        let mut b = TopologyBuilder::new();
        for srv in 0..self.servers {
            for g in 0..self.gpus {
                b.add_device(Device::v100(format!("srv{srv}/gpu{g}")), srv);
            }
        }
        for srv in 0..self.servers {
            b.add_device(Device::host(format!("srv{srv}/cpu")), srv);
        }
        match self.links {
            LinkProfile::Pcie => {
                b.connect_intra_server(Link::pcie());
                b.connect_inter_server(Link::ethernet_25g());
            }
            LinkProfile::Rdma => {
                b.connect_intra_server(Link::nvlink());
                b.connect_inter_server(Link::rdma_100g());
            }
            LinkProfile::Nvlink => unreachable!(),
        }
        b.connect_host_pcie(Link::pcie());
        b.build()
    }
}

/// One fault, in exactly-serializable integer form (`*_x10` fields carry
/// one decimal place; `prob_pct` is a percentage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// [`FaultKind::Straggler`] over `[from, to)`.
    Straggler {
        /// Slowed device.
        dev: u16,
        /// Slowdown ×10 (35 = 3.5×).
        factor_x10: u32,
        /// Window start iteration (inclusive).
        from: u64,
        /// Window end iteration (exclusive).
        to: u64,
    },
    /// [`FaultKind::LinkDegrade`] over `[from, to)`.
    LinkDegrade {
        /// Source device.
        src: u16,
        /// Destination device.
        dst: u16,
        /// Transfer-time factor ×10.
        factor_x10: u32,
        /// Window start.
        from: u64,
        /// Window end.
        to: u64,
    },
    /// [`FaultKind::TransientOp`] over `[from, to)`.
    Transient {
        /// Failing device.
        dev: u16,
        /// Failure probability as a percentage.
        prob_pct: u8,
        /// Window start.
        from: u64,
        /// Window end.
        to: u64,
    },
    /// [`FaultKind::ProfileFailure`] from iteration 0 (the PR 2 live-lock
    /// regression class).
    ProfileFail {
        /// Failing device.
        dev: u16,
        /// Consecutive failing attempts.
        attempts: u32,
    },
    /// [`FaultKind::Crash`] at `at`, permanent.
    Crash {
        /// Crashing device.
        dev: u16,
        /// Crash iteration.
        at: u64,
    },
    /// [`FaultKind::MemPressure`] over `[from, to)`.
    MemPressure {
        /// Pressured device.
        dev: u16,
        /// Reserved bytes in MiB.
        reserve_mib: u64,
        /// Window start.
        from: u64,
        /// Window end.
        to: u64,
    },
    /// [`FaultKind::LinkFlap`] over `[from, to)`.
    LinkFlap {
        /// Source device.
        src: u16,
        /// Destination device.
        dst: u16,
        /// Per-iteration flap probability as a percentage.
        prob_pct: u8,
        /// Window start.
        from: u64,
        /// Window end.
        to: u64,
    },
    /// [`FaultKind::HostPartition`] from `at`, permanent.
    Partition {
        /// Partitioned server.
        server: u16,
        /// Partition iteration.
        at: u64,
    },
    /// [`FaultKind::CollectiveStraggler`] over `[from, to)`.
    CollectiveStraggler {
        /// Straggling participant.
        dev: u16,
        /// Collective slowdown ×10.
        factor_x10: u32,
        /// Window start.
        from: u64,
        /// Window end.
        to: u64,
    },
    /// [`FaultKind::NicDegrade`] over `[from, to)`.
    NicDegrade {
        /// Degraded server.
        server: u16,
        /// NIC factor ×10.
        factor_x10: u32,
        /// Window start.
        from: u64,
        /// Window end.
        to: u64,
    },
}

impl FaultSpec {
    /// Lowers the spec to a [`Fault`].
    pub fn to_fault(&self) -> Fault {
        let d = |v: u16| DeviceId(v);
        match *self {
            FaultSpec::Straggler {
                dev,
                factor_x10,
                from,
                to,
            } => Fault::windowed(
                FaultKind::Straggler {
                    device: d(dev),
                    slowdown: factor_x10 as f64 / 10.0,
                },
                from,
                to,
            ),
            FaultSpec::LinkDegrade {
                src,
                dst,
                factor_x10,
                from,
                to,
            } => Fault::windowed(
                FaultKind::LinkDegrade {
                    src: d(src),
                    dst: d(dst),
                    factor: factor_x10 as f64 / 10.0,
                },
                from,
                to,
            ),
            FaultSpec::Transient {
                dev,
                prob_pct,
                from,
                to,
            } => Fault::windowed(
                FaultKind::TransientOp {
                    device: d(dev),
                    prob: prob_pct as f64 / 100.0,
                },
                from,
                to,
            ),
            FaultSpec::ProfileFail { dev, attempts } => Fault::from(
                FaultKind::ProfileFailure {
                    device: d(dev),
                    fail_attempts: attempts,
                },
                0,
            ),
            FaultSpec::Crash { dev, at } => Fault::from(FaultKind::Crash { device: d(dev) }, at),
            FaultSpec::MemPressure {
                dev,
                reserve_mib,
                from,
                to,
            } => Fault::windowed(
                FaultKind::MemPressure {
                    device: d(dev),
                    reserve_bytes: reserve_mib << 20,
                },
                from,
                to,
            ),
            FaultSpec::LinkFlap {
                src,
                dst,
                prob_pct,
                from,
                to,
            } => Fault::windowed(
                FaultKind::LinkFlap {
                    src: d(src),
                    dst: d(dst),
                    prob: prob_pct as f64 / 100.0,
                },
                from,
                to,
            ),
            FaultSpec::Partition { server, at } => {
                Fault::from(FaultKind::HostPartition { server }, at)
            }
            FaultSpec::CollectiveStraggler {
                dev,
                factor_x10,
                from,
                to,
            } => Fault::windowed(
                FaultKind::CollectiveStraggler {
                    device: d(dev),
                    slowdown: factor_x10 as f64 / 10.0,
                },
                from,
                to,
            ),
            FaultSpec::NicDegrade {
                server,
                factor_x10,
                from,
                to,
            } => Fault::windowed(
                FaultKind::NicDegrade {
                    server,
                    factor: factor_x10 as f64 / 10.0,
                },
                from,
                to,
            ),
        }
    }

    /// Whether every device/server reference fits the topology shape.
    pub fn in_range(&self, topo: &TopoSpec) -> bool {
        let g = topo.total_gpus();
        let s = topo.servers;
        match *self {
            FaultSpec::Straggler { dev, .. }
            | FaultSpec::Transient { dev, .. }
            | FaultSpec::ProfileFail { dev, .. }
            | FaultSpec::Crash { dev, .. }
            | FaultSpec::MemPressure { dev, .. }
            | FaultSpec::CollectiveStraggler { dev, .. } => dev < g,
            FaultSpec::LinkDegrade { src, dst, .. } | FaultSpec::LinkFlap { src, dst, .. } => {
                src < g && dst < g && src != dst
            }
            FaultSpec::Partition { server, .. } | FaultSpec::NicDegrade { server, .. } => {
                server < s
            }
        }
    }
}

/// One lifecycle event in exactly-serializable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleSpec {
    /// [`LifecycleKind::SpotRevocation`] at `at` with `notice` iterations
    /// of warning.
    Spot {
        /// Revoked device.
        dev: u16,
        /// Revocation notice iteration.
        at: u64,
        /// Notice window length.
        notice: u64,
    },
    /// [`LifecycleKind::DeviceRestore`] at `at`.
    Restore {
        /// Restored device.
        dev: u16,
        /// Restore iteration.
        at: u64,
    },
    /// [`LifecycleKind::DeviceArrival`] at `at` (re-admission of an
    /// existing id).
    Arrival {
        /// Arriving device.
        dev: u16,
        /// Arrival iteration.
        at: u64,
    },
    /// [`LifecycleKind::HostArrival`] at `at`: a whole hot-added server.
    HostArrival {
        /// GPUs on the new server.
        gpus: u16,
        /// Arrival iteration.
        at: u64,
    },
}

impl LifecycleSpec {
    /// Lowers the spec to a [`LifecycleEvent`].
    pub fn to_event(&self) -> LifecycleEvent {
        match *self {
            LifecycleSpec::Spot { dev, at, notice } => LifecycleEvent::at(
                LifecycleKind::SpotRevocation {
                    device: DeviceId(dev),
                    notice_iters: notice,
                },
                at,
            ),
            LifecycleSpec::Restore { dev, at } => LifecycleEvent::at(
                LifecycleKind::DeviceRestore {
                    device: DeviceId(dev),
                },
                at,
            ),
            LifecycleSpec::Arrival { dev, at } => LifecycleEvent::at(
                LifecycleKind::DeviceArrival {
                    device: DeviceId(dev),
                },
                at,
            ),
            LifecycleSpec::HostArrival { gpus, at } => {
                LifecycleEvent::at(LifecycleKind::HostArrival { gpus }, at)
            }
        }
    }

    /// Whether every device reference fits the topology shape.
    pub fn in_range(&self, topo: &TopoSpec) -> bool {
        match *self {
            LifecycleSpec::Spot { dev, .. }
            | LifecycleSpec::Restore { dev, .. }
            | LifecycleSpec::Arrival { dev, .. } => dev < topo.total_gpus(),
            LifecycleSpec::HostArrival { gpus, .. } => gpus >= 1,
        }
    }
}

/// Which planner path the scenario exercises for the plan-level
/// invariants (placement validity, comm-plan lowering, cache identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerChoice {
    /// Flat DPOS only.
    Flat,
    /// The portfolio slate: DPOS, the data-parallel start strategy, and
    /// the hierarchical planner, each checked independently.
    Portfolio,
    /// Hierarchical (decompose → quotient DPOS → refine) only.
    Hierarchical,
}

impl PlannerChoice {
    /// Stable lowercase label for the replay codec.
    pub fn as_str(self) -> &'static str {
        match self {
            PlannerChoice::Flat => "flat",
            PlannerChoice::Portfolio => "portfolio",
            PlannerChoice::Hierarchical => "hierarchical",
        }
    }
}

/// One fleet job riding the scenario's shared cluster. All jobs train the
/// scenario's graph (deliberately: identical model + shape admissions are
/// the shared-plan-cache twin path the PR 8 equivariance bug hid in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzJob {
    /// Scheduler tick the job arrives at.
    pub arrival: u64,
    /// Iterations the job runs.
    pub iters: u64,
    /// GPUs requested.
    pub gpus: usize,
    /// Preemption floor.
    pub min_gpus: usize,
    /// Priority (higher wins).
    pub priority: u8,
}

/// A full fuzz scenario: one point in the cross-product of every axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Root seed: drives the session's jitter stream and all derived
    /// sub-streams.
    pub seed: u64,
    /// Iterations the single-session run executes.
    pub iters: u64,
    /// Graph-shape axis.
    pub graph: GraphSpec,
    /// Topology axis.
    pub topo: TopoSpec,
    /// Fault-schedule axis.
    pub faults: Vec<FaultSpec>,
    /// Lifecycle (churn) axis.
    pub lifecycle: Vec<LifecycleSpec>,
    /// Planner-choice axis.
    pub planner: PlannerChoice,
    /// Fleet-workload axis (empty = single-session scenario).
    pub jobs: Vec<FuzzJob>,
}

impl Scenario {
    /// Lowers the fault + lifecycle axes to a [`FaultSchedule`].
    pub fn fault_schedule(&self) -> FaultSchedule {
        let mut s = FaultSchedule::none();
        for f in &self.faults {
            s = s.with(f.to_fault());
        }
        for l in &self.lifecycle {
            s = s.with_lifecycle(l.to_event());
        }
        s
    }

    /// Drops any fault/lifecycle/job entry that no longer fits the
    /// topology or iteration budget — called by the minimizer after every
    /// axis reduction so shrunk scenarios stay well-formed.
    pub fn sanitize(&mut self) {
        let topo = self.topo.clone();
        self.faults.retain(|f| f.in_range(&topo));
        self.lifecycle.retain(|l| l.in_range(&topo));
        let total = topo.total_gpus() as usize;
        if total < 4 {
            // the fleet scheduler needs at least 4 GPUs of headroom
            self.jobs.clear();
        }
        for j in &mut self.jobs {
            j.gpus = j.gpus.clamp(1, total);
            j.min_gpus = j.min_gpus.clamp(1, j.gpus);
        }
    }

    /// Deterministically generates scenario `index` of the sweep rooted
    /// at `root_seed`. Every axis draws from its own collision-free
    /// sub-stream ([`SeedStream::split`]), so axes can be varied or
    /// shrunk independently without perturbing each other.
    pub fn generate(root_seed: u64, index: u64) -> Scenario {
        let root = SeedStream::domain(root_seed, domains::FUZZ).split(index);
        let (gs, ts, fs, ls, ps, js) = (
            root.split(1),
            root.split(2),
            root.split(3),
            root.split(4),
            root.split(5),
            root.split(6),
        );

        // --- topology axis ---
        let servers = 1 + ts.pick(0, 3) as u16; // 1..=3
        let gpus = 1 + ts.pick(1, 4) as u16; // 1..=4
        let links = match ts.pick(2, 3) {
            0 => LinkProfile::Nvlink,
            1 => LinkProfile::Pcie,
            _ => LinkProfile::Rdma,
        };
        let topo = TopoSpec {
            servers,
            gpus,
            links,
        };
        let total = topo.total_gpus();

        // --- graph axis ---
        let conv_prefix = gs.pick(0, 3) as u8; // 0..=2
        let n_layers = 1 + gs.pick(1, 5) as usize; // 1..=5
        let layers = (0..n_layers)
            .map(|i| {
                let s = gs.split(10 + i as u64);
                match s.pick(0, 6) {
                    0 | 1 => LayerSpec::Dense {
                        width: 8 << s.pick(1, 4), // 8..=64
                    },
                    2 => LayerSpec::Fan {
                        width: 8 << s.pick(1, 3),
                        branches: 2 + s.pick(2, 2), // 2..=3
                    },
                    3 | 4 => LayerSpec::Block,
                    _ => LayerSpec::Norm,
                }
            })
            .collect();
        let graph = GraphSpec {
            batch: 2 << gs.pick(2, 3), // 2, 4, 8
            conv_prefix,
            layers,
        };

        let iters = 12 + root.pick(7, 17); // 12..=28

        // --- fault axis ---
        let n_faults = fs.pick(0, 4); // 0..=3
        let mut faults = Vec::new();
        for i in 0..n_faults {
            let s = fs.split(20 + i);
            let dev = s.pick(0, total as u64) as u16;
            let from = s.pick(1, iters / 2);
            let to = from + 1 + s.pick(2, iters / 3);
            let spec = match s.pick(3, 10) {
                0 => FaultSpec::Straggler {
                    dev,
                    factor_x10: 20 + s.pick(4, 40) as u32,
                    from,
                    to,
                },
                1 if total >= 2 => {
                    let dst = (dev + 1 + s.pick(4, total as u64 - 1) as u16) % total;
                    FaultSpec::LinkDegrade {
                        src: dev,
                        dst,
                        factor_x10: 20 + s.pick(5, 60) as u32,
                        from,
                        to,
                    }
                }
                2 => FaultSpec::Transient {
                    dev,
                    prob_pct: 30 + s.pick(4, 60) as u8,
                    from,
                    to,
                },
                3 => FaultSpec::ProfileFail {
                    dev,
                    attempts: 1 + s.pick(4, 6) as u32,
                },
                4 if total >= 2 => FaultSpec::Crash {
                    dev,
                    at: iters / 3 + s.pick(4, iters / 3),
                },
                5 => FaultSpec::MemPressure {
                    dev,
                    reserve_mib: 256 << s.pick(4, 5),
                    from,
                    to,
                },
                6 if total >= 2 => {
                    let dst = (dev + 1 + s.pick(4, total as u64 - 1) as u16) % total;
                    FaultSpec::LinkFlap {
                        src: dev,
                        dst,
                        prob_pct: 10 + s.pick(5, 40) as u8,
                        from,
                        to,
                    }
                }
                7 if servers >= 2 => FaultSpec::Partition {
                    server: s.pick(4, servers as u64) as u16,
                    at: iters / 2 + s.pick(5, iters / 4),
                },
                8 => FaultSpec::CollectiveStraggler {
                    dev,
                    factor_x10: 30 + s.pick(4, 40) as u32,
                    from,
                    to,
                },
                _ => FaultSpec::NicDegrade {
                    server: s.pick(4, servers as u64) as u16,
                    factor_x10: 40 + s.pick(5, 80) as u32,
                    from,
                    to,
                },
            };
            faults.push(spec);
        }

        // --- lifecycle axis ---
        let n_life = ls.pick(0, 3); // 0..=2
        let mut lifecycle = Vec::new();
        for i in 0..n_life {
            let s = ls.split(30 + i);
            let dev = s.pick(0, total as u64) as u16;
            let at = 2 + s.pick(1, iters / 2);
            let spec = match s.pick(2, 4) {
                0 if total >= 2 => LifecycleSpec::Spot {
                    dev,
                    at,
                    notice: 2 + s.pick(3, 3),
                },
                1 => LifecycleSpec::Restore { dev, at: at + 4 },
                2 => LifecycleSpec::HostArrival {
                    gpus: 1 + s.pick(3, 2) as u16,
                    at,
                },
                _ => LifecycleSpec::Arrival { dev, at: at + 3 },
            };
            lifecycle.push(spec);
        }

        // --- planner axis ---
        let planner = match ps.pick(0, 3) {
            0 => PlannerChoice::Flat,
            1 => PlannerChoice::Portfolio,
            _ => PlannerChoice::Hierarchical,
        };

        // --- fleet axis: only on clusters with scheduler headroom, and
        // only for a third of scenarios (fleet runs are the costliest) ---
        let mut jobs: Vec<FuzzJob> = Vec::new();
        if total >= 4 && js.pick(0, 3) == 0 {
            let n_jobs = 2 + js.pick(1, 3); // 2..=4, always includes a twin pair
            for i in 0..n_jobs {
                let s = js.split(40 + i);
                let twin_of_first = i == 1; // job 1 mirrors job 0: the cache-twin path
                let gpus = if twin_of_first {
                    jobs[0].gpus
                } else {
                    1 + s.pick(0, (total as u64 / 2).max(1)) as usize
                };
                jobs.push(FuzzJob {
                    arrival: i + s.pick(1, 3),
                    iters: 4 + s.pick(2, 6),
                    gpus,
                    min_gpus: 1,
                    priority: 1 + s.pick(3, 4) as u8,
                });
            }
        }

        let mut sc = Scenario {
            seed: root.subseed(8),
            iters,
            graph,
            topo,
            faults,
            lifecycle,
            planner,
            jobs,
        };
        sc.sanitize();
        sc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_index_sensitive() {
        let a = Scenario::generate(0, 3);
        let b = Scenario::generate(0, 3);
        assert_eq!(a, b);
        let c = Scenario::generate(0, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_graphs_are_valid_dags() {
        for i in 0..24 {
            let sc = Scenario::generate(1, i);
            let g = sc.graph.training();
            assert!(g.op_count() > 0, "scenario {i} built an empty graph");
            assert!(
                sc.topo.build().validate().is_ok(),
                "scenario {i} built an invalid topology"
            );
        }
    }

    #[test]
    fn sanitize_drops_out_of_range_references() {
        let mut sc = Scenario::generate(0, 0);
        sc.faults.push(FaultSpec::Crash { dev: 250, at: 1 });
        sc.lifecycle
            .push(LifecycleSpec::Restore { dev: 251, at: 1 });
        sc.sanitize();
        assert!(sc.faults.iter().all(|f| f.in_range(&sc.topo)));
        assert!(sc.lifecycle.iter().all(|l| l.in_range(&sc.topo)));
    }
}
