//! The invariant oracle: runs one [`Scenario`] end to end and
//! property-checks the six invariant families the repo claims globally.
//!
//! | family | claim |
//! |---|---|
//! | [`COMM_DEADLOCK_FREE`] | every lowered `CommPlan` passes the cycle validator; the fleet scheduler never wedges |
//! | [`DETERMINISM`] | same-seed runs produce byte-identical recovery and fleet logs |
//! | [`CACHE_IDENTITY`] | a plan served from the `PlanCache` is structurally identical to a freshly computed one |
//! | [`PLACEMENT_VALIDITY`] | every adopted placement validates over survivors and fits device memory (and the topology itself passes [`Topology::validate`]) |
//! | [`TIME_MONOTONE`] | simulated time is monotone in fault severity and never regresses under added capacity |
//! | [`DECOMPOSE_ROUNDTRIP`] | decompose ↔ expand is a lossless partition of ops and edges |
//!
//! A scenario run is allowed to *fail* (a cluster that loses every GPU
//! exhausts legitimately) — but it must fail identically under the same
//! seed, and every plan it adopted along the way must have been valid.

use crate::scenario::{PlannerChoice, Scenario};
use fastt::{
    bootstrap_cost_models, ClusterManager, DataParallelPlanner, DposPlanner, Fingerprint,
    FingerprintContext, HierarchicalPlanner, JobSpec, Plan, PlanCache, Planner, PlanningContext,
    SessionConfig, TrainingSession,
};
use fastt_cluster::Topology;
use fastt_graph::decompose;
use fastt_sim::{FaultKind, FaultSchedule, HardwarePerf, SimConfig, SimError};
use fastt_telemetry::{jobj, Collector};
use std::collections::HashMap;
use std::sync::Arc;

/// Family 1: deadlock-freedom of every lowered comm plan.
pub const COMM_DEADLOCK_FREE: &str = "comm_deadlock_free";
/// Family 2: same-seed byte-identical recovery and fleet logs.
pub const DETERMINISM: &str = "determinism";
/// Family 3: cache-served plans structurally identical to fresh plans.
pub const CACHE_IDENTITY: &str = "cache_identity";
/// Family 4: adopted placements validate and fit memory over survivors.
pub const PLACEMENT_VALIDITY: &str = "placement_validity";
/// Family 5: simulated time monotone in fault severity / capacity.
pub const TIME_MONOTONE: &str = "time_monotone";
/// Family 6: decompose↔expand round-trips partition-exactly.
pub const DECOMPOSE_ROUNDTRIP: &str = "decompose_roundtrip";

/// All six invariant families, in reporting order.
pub const FAMILIES: [&str; 6] = [
    COMM_DEADLOCK_FREE,
    DETERMINISM,
    CACHE_IDENTITY,
    PLACEMENT_VALIDITY,
    TIME_MONOTONE,
    DECOMPOSE_ROUNDTRIP,
];

/// Test-only invariant breakers: each mode corrupts one oracle input the
/// way a real bug would, proving the fuzzer catches and minimizes it.
/// Production sweeps run [`Sabotage::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// No corruption — the production mode.
    None,
    /// Re-routes the first op of every adopted placement to the CPU host
    /// (planners must never place work on hosts), breaking
    /// [`PLACEMENT_VALIDITY`].
    Placement,
    /// Perturbs the cache-served plan's signature before comparison,
    /// simulating a fingerprint collision, breaking [`CACHE_IDENTITY`].
    Cache,
}

impl Sabotage {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Result<Sabotage, String> {
        match s {
            "none" => Ok(Sabotage::None),
            "placement" => Ok(Sabotage::Placement),
            "cache" => Ok(Sabotage::Cache),
            other => Err(format!("unknown sabotage mode `{other}`")),
        }
    }
}

/// One invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated family (one of [`FAMILIES`]).
    pub family: &'static str,
    /// Human-readable description of what broke.
    pub detail: String,
}

fn violation(out: &mut Vec<Violation>, family: &'static str, detail: String) {
    out.push(Violation { family, detail });
}

/// Structural signature of a plan: placement pairs, splits, and order —
/// everything the cache must preserve exactly (estimated finish is
/// derived, not structural).
fn plan_signature(plan: &Plan) -> String {
    let placement: Vec<(u32, u16)> = plan.placement.iter().map(|(o, d)| (o.0, d.0)).collect();
    format!(
        "ops={} placement={placement:?} splits={:?} order={:?}",
        plan.graph.op_count(),
        plan.splits,
        plan.order
    )
}

/// Validates one adopted plan against family 1 (deadlock-freedom) and
/// family 4 (placement validity + memory fit), over the given (possibly
/// degraded) topology. `iteration` selects the fault-schedule instant the
/// comm plan is validated at.
fn check_adopted_plan(
    plan: &Plan,
    topo: &Topology,
    hw: &HardwarePerf,
    iteration: u64,
    label: &str,
    sabotage: Sabotage,
    out: &mut Vec<Violation>,
) {
    let mut placement = plan.placement.clone();
    if sabotage == Sabotage::Placement {
        if let Some(host) = (0..topo.device_count())
            .map(|i| fastt_cluster::DeviceId(i as u16))
            .find(|&d| topo.is_host(d))
        {
            if let Some((op, _)) = plan.placement.iter().next() {
                placement.set(op, host);
            }
        }
    }
    if let Err(e) = placement.validate(&plan.graph, topo) {
        violation(out, PLACEMENT_VALIDITY, format!("{label}: {e}"));
        return;
    }
    let mut used: HashMap<u16, u64> = HashMap::new();
    for (op, d) in placement.iter() {
        *used.entry(d.0).or_insert(0) += hw.planning_bytes(plan.graph.op_ref(op));
    }
    for (d, bytes) in used {
        let cap = topo.device(fastt_cluster::DeviceId(d)).mem_bytes;
        if bytes > cap {
            violation(
                out,
                PLACEMENT_VALIDITY,
                format!("{label}: device {d} holds {bytes} planning bytes over {cap}"),
            );
        }
    }
    // Lowering can legitimately fail while links are down mid-recovery;
    // only an actual cycle (Deadlock) breaks the invariant.
    if let Ok(cp) = fastt_sim::CommPlan::lower(&plan.graph, &placement, topo) {
        if let Err(SimError::Deadlock { executed, total }) = cp.validate(topo, iteration) {
            violation(
                out,
                COMM_DEADLOCK_FREE,
                format!("{label}: comm plan cyclic ({executed}/{total} steps reachable)"),
            );
        }
    }
}

/// The planner slate a [`PlannerChoice`] checks.
fn planners(choice: PlannerChoice) -> Vec<Box<dyn Planner>> {
    match choice {
        PlannerChoice::Flat => vec![Box::<DposPlanner>::default()],
        PlannerChoice::Hierarchical => vec![Box::<HierarchicalPlanner>::default()],
        PlannerChoice::Portfolio => vec![
            Box::<DposPlanner>::default(),
            Box::<DataParallelPlanner>::default(),
            Box::<HierarchicalPlanner>::default(),
        ],
    }
}

/// One deterministic single-session run; returns the byte-stable outcome
/// transcript, and (when `deep` is set) checks every adopted plan along
/// the way.
#[allow(clippy::too_many_arguments)]
fn session_run(
    sc: &Scenario,
    schedule: &Arc<FaultSchedule>,
    hw: &HardwarePerf,
    deep: bool,
    sabotage: Sabotage,
    out: &mut Vec<Violation>,
) -> String {
    let g = sc.graph.training();
    let topo = sc.topo.build();
    let config = SessionConfig {
        profile_iters: 1,
        max_rounds: 2,
        seed: sc.seed,
        faults: Some(schedule.clone()),
        ..SessionConfig::default()
    };
    let mut session = match TrainingSession::new(&g, topo, hw.clone(), config) {
        Ok(s) => s,
        Err(e) => return format!("construct-err: {e}"),
    };
    let mut transcript = String::new();
    match session.pre_train() {
        Ok(r) => transcript.push_str(&format!("pretrain: {:.6}\n", r.final_iter_time)),
        Err(e) => {
            transcript.push_str(&format!("pretrain-err: {e}\n"));
            transcript.push_str(&format!("recovery: {:?}\n", session.recovery_log()));
            return transcript;
        }
    }
    if deep {
        check_adopted_plan(
            session.current_plan(),
            session.topology(),
            hw,
            0,
            "post-pretrain plan",
            sabotage,
            out,
        );
    }
    while session.iterations_run() < sc.iters {
        let before = session.iterations_run();
        match session.train_normal(1, 4) {
            Ok(_) => {}
            Err(e) => {
                transcript.push_str(&format!("train-err@{before}: {e}\n"));
                break;
            }
        }
        if deep {
            check_adopted_plan(
                session.current_plan(),
                session.topology(),
                hw,
                session.iterations_run(),
                &format!("plan@iter{}", session.iterations_run()),
                sabotage,
                out,
            );
        }
        if session.iterations_run() == before {
            transcript.push_str("stalled\n");
            break;
        }
    }
    transcript.push_str(&format!("iters: {}\n", session.iterations_run()));
    transcript.push_str(&format!("recovery: {:?}\n", session.recovery_log()));
    transcript
}

/// One deterministic fleet run; returns the byte-stable fleet log and
/// checks the scheduler never wedged.
fn fleet_run(sc: &Scenario, hw: &HardwarePerf, out: &mut Vec<Violation>) -> String {
    let g = sc.graph.training();
    let mut fleet = ClusterManager::new(sc.topo.build(), hw.clone(), sc.seed);
    for (i, j) in sc.jobs.iter().enumerate() {
        fleet.submit(JobSpec {
            name: format!("job{i}"),
            graph: g.clone(),
            arrival: j.arrival,
            iters: j.iters,
            gpus: j.gpus,
            min_gpus: j.min_gpus,
            priority: j.priority,
            deadline: None,
        });
    }
    let report = match fleet.run() {
        Ok(r) => r,
        Err(e) => return format!("fleet-err: {e}"),
    };
    if report.deadlocks != 0 {
        violation(
            out,
            COMM_DEADLOCK_FREE,
            format!("fleet run lowered {} cyclic comm plans", report.deadlocks),
        );
    }
    report.event_log()
}

/// Checks family 6 on the scenario's training graph (the exact partition
/// checks pinned in `fastt-graph`'s round-trip property).
fn check_decompose(sc: &Scenario, out: &mut Vec<Violation>) {
    let g = sc.graph.training();
    let tree = decompose(&g);
    let mut covered = vec![0u32; g.op_count()];
    for (id, r) in tree.regions() {
        for &op in &r.ops {
            covered[op.index()] += 1;
            if tree.region_of(op) != id {
                violation(
                    out,
                    DECOMPOSE_ROUNDTRIP,
                    format!("op {op} in region {id:?} but region_of disagrees"),
                );
                return;
            }
        }
    }
    if let Some(op) = covered.iter().position(|&c| c != 1) {
        violation(
            out,
            DECOMPOSE_ROUNDTRIP,
            format!("op {op} covered by {} regions", covered[op]),
        );
        return;
    }
    let boundary: std::collections::HashSet<(u32, u32)> = tree
        .boundary_edges()
        .iter()
        .map(|&(s, d, _)| (s.0, d.0))
        .collect();
    let mut cross = 0usize;
    let mut quotient_proj: std::collections::HashSet<(u32, u32)> = Default::default();
    for e in g.iter_edges() {
        let (rs, rd) = (tree.region_of(e.src), tree.region_of(e.dst));
        let listed = boundary.contains(&(e.src.0, e.dst.0));
        if rs == rd && listed {
            violation(
                out,
                DECOMPOSE_ROUNDTRIP,
                format!("internal edge {}->{} listed as boundary", e.src, e.dst),
            );
            return;
        }
        if rs != rd {
            cross += 1;
            quotient_proj.insert((rs.0, rd.0));
            if !listed {
                violation(
                    out,
                    DECOMPOSE_ROUNDTRIP,
                    format!(
                        "cross-region edge {}->{} missing from boundary",
                        e.src, e.dst
                    ),
                );
                return;
            }
        }
    }
    if boundary.len() != cross {
        violation(
            out,
            DECOMPOSE_ROUNDTRIP,
            format!(
                "{} boundary edges for {cross} cross-region edges",
                boundary.len()
            ),
        );
        return;
    }
    let quotient: std::collections::HashSet<(u32, u32)> = tree
        .quotient_edges()
        .iter()
        .map(|&(s, d, _)| (s.0, d.0))
        .collect();
    if quotient != quotient_proj {
        violation(
            out,
            DECOMPOSE_ROUNDTRIP,
            "quotient edges are not the projected cross-region edges".to_string(),
        );
    }
}

/// Checks families 1/3/4 at the planner level and family 5 on the chosen
/// plan, over a healthy topology.
fn check_planners(sc: &Scenario, hw: &HardwarePerf, sabotage: Sabotage, out: &mut Vec<Violation>) {
    let g = sc.graph.training();
    let topo = sc.topo.build();
    if let Err(e) = topo.validate() {
        violation(
            out,
            PLACEMENT_VALIDITY,
            format!("generated topology invalid: {e}"),
        );
        return;
    }
    if topo.gpu_count() == 0 {
        return;
    }
    let cost = bootstrap_cost_models(&g, &topo, hw);
    let cache = PlanCache::new(64);
    let mut monotone_plan: Option<Plan> = None;

    for p in planners(sc.planner) {
        let mut ctx = PlanningContext::new(&g, &topo, hw, cost.clone()).with_raw(&g);
        let plan = match p.plan(&mut ctx) {
            Ok(plan) => plan,
            Err(_) => continue, // planners may legitimately decline an instance
        };
        check_adopted_plan(
            &plan,
            &topo,
            hw,
            0,
            &format!("{} plan", p.name()),
            sabotage,
            out,
        );

        // family 3: insert, re-fetch, and recompute — the cache-served
        // plan must be structurally identical to a fresh computation
        if p.cacheable() {
            let fp = Fingerprint::compute(
                p.as_ref(),
                &g,
                Some(&g),
                &topo,
                &ctx.cost,
                &FingerprintContext {
                    dp_ps: None,
                    enable_order: true,
                    cache_salt: 0,
                },
            );
            cache.insert(fp.clone(), &plan, &topo);
            match cache.get(&fp, &topo) {
                None => violation(
                    out,
                    CACHE_IDENTITY,
                    format!("{}: inserted plan not served back", p.name()),
                ),
                Some(cached) => {
                    let mut ctx2 = PlanningContext::new(&g, &topo, hw, cost.clone()).with_raw(&g);
                    if let Ok(fresh) = p.plan(&mut ctx2) {
                        let mut cached_sig = plan_signature(&cached);
                        if sabotage == Sabotage::Cache {
                            cached_sig.push_str(" corrupted");
                        }
                        if cached_sig != plan_signature(&fresh) {
                            violation(
                                out,
                                CACHE_IDENTITY,
                                format!(
                                    "{}: cache-served plan diverges from fresh plan\n  cached: {}\n  fresh:  {}",
                                    p.name(),
                                    cached_sig,
                                    plan_signature(&fresh)
                                ),
                            );
                        }
                    }
                }
            }
        }
        if monotone_plan.is_none() {
            monotone_plan = Some(plan);
        }
    }

    // family 5: time monotone in fault severity and capacity
    if let Some(plan) = monotone_plan {
        let quiet = SimConfig {
            jitter_pct: 0.0,
            ..SimConfig::default()
        };
        let straggler = |slowdown: f64| {
            Some(Arc::new(FaultSchedule::none().with(
                fastt_sim::Fault::windowed(
                    FaultKind::Straggler {
                        device: fastt_cluster::DeviceId(0),
                        slowdown,
                    },
                    0,
                    1,
                ),
            )))
        };
        let base = plan.simulate(&topo, hw, &quiet).map(|t| t.makespan);
        let light = plan
            .simulate(
                &topo,
                hw,
                &SimConfig {
                    faults: straggler(1.5),
                    ..quiet.clone()
                },
            )
            .map(|t| t.makespan);
        let heavy = plan
            .simulate(
                &topo,
                hw,
                &SimConfig {
                    faults: straggler(3.0),
                    ..quiet.clone()
                },
            )
            .map(|t| t.makespan);
        if let (Ok(b), Ok(l), Ok(h)) = (base, light, heavy) {
            let eps = 1e-9 * b.max(1.0);
            if l > h + eps || b > l + eps {
                violation(
                    out,
                    TIME_MONOTONE,
                    format!(
                        "makespan not monotone in straggler severity: base {b} light {l} heavy {h}"
                    ),
                );
            }
            // idle capacity is free: the same plan on a grown cluster
            // simulates identically
            let mut grown = topo.clone();
            grown.add_server(2);
            if let Ok(carried) = plan.simulate(&grown, hw, &quiet).map(|t| t.makespan) {
                if (carried - b).abs() > eps {
                    violation(
                        out,
                        TIME_MONOTONE,
                        format!("idle hot-added capacity changed simulated time: {b} -> {carried}"),
                    );
                }
            }
        }
    }
}

/// Runs the full oracle over one scenario: all six invariant families,
/// with optional [`Sabotage`] and telemetry. Returns every violation
/// found (empty = the scenario upholds all claims).
pub fn check(sc: &Scenario, sabotage: Sabotage, collector: Option<&Collector>) -> Vec<Violation> {
    let mut out = Vec::new();
    let hw = HardwarePerf::new();

    // family 6 + topology consistency are pure structure checks
    check_decompose(sc, &mut out);
    if let Err(e) = sc.topo.build().validate() {
        violation(&mut out, PLACEMENT_VALIDITY, format!("topology: {e}"));
    }

    // families 1/3/4/5 at the planner level
    check_planners(sc, &hw, sabotage, &mut out);

    // families 1/2/4 over a live fault-injected session, run twice
    let schedule = Arc::new(sc.fault_schedule());
    let first = session_run(sc, &schedule, &hw, true, sabotage, &mut out);
    let second = session_run(sc, &schedule, &hw, false, Sabotage::None, &mut out);
    if first != second {
        violation(
            &mut out,
            DETERMINISM,
            format!(
                "same-seed session transcripts diverge:\n--- run 1\n{first}--- run 2\n{second}"
            ),
        );
    }

    // family 1/2 over the shared-cluster fleet, run twice
    if !sc.jobs.is_empty() {
        let f1 = fleet_run(sc, &hw, &mut out);
        let mut scratch = Vec::new();
        let f2 = fleet_run(sc, &hw, &mut scratch);
        if f1 != f2 {
            violation(
                &mut out,
                DETERMINISM,
                format!("same-seed fleet logs diverge:\n--- run 1\n{f1}--- run 2\n{f2}"),
            );
        }
    }

    if let Some(col) = collector {
        col.metrics().inc("fuzz.scenarios");
        for v in &out {
            col.metrics().inc("fuzz.violations");
            col.emit(
                "fuzz.violation",
                jobj! { "family" => v.family, "detail" => v.detail.as_str() },
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_scenarios_uphold_all_invariants() {
        for i in 0..4 {
            let sc = Scenario::generate(0, i);
            let v = check(&sc, Sabotage::None, None);
            assert!(v.is_empty(), "scenario {i} violated: {:?}", v);
        }
    }

    #[test]
    fn sabotage_is_caught() {
        let sc = Scenario::generate(0, 0);
        let v = check(&sc, Sabotage::Placement, None);
        assert!(
            v.iter().any(|v| v.family == PLACEMENT_VALIDITY),
            "placement sabotage not caught: {v:?}"
        );
        let v = check(&sc, Sabotage::Cache, None);
        assert!(
            v.iter().any(|v| v.family == CACHE_IDENTITY),
            "cache sabotage not caught: {v:?}"
        );
    }
}
