//! Self-contained replay files: a line-oriented text codec for
//! [`Scenario`] that round-trips exactly (all fields are integers), so a
//! minimized reproducer committed to `fuzz/corpus/` replays the same
//! scenario forever, with no external parser dependencies.
//!
//! Format (`#` starts a comment, order of `fault`/`lifecycle`/`job` lines
//! is significant, everything else is one `key = value` per line):
//!
//! ```text
//! # fastt-fuzz scenario v1
//! seed = 1234
//! iters = 20
//! batch = 4
//! conv_prefix = 1
//! layers = dense:32 fan:16x2 block norm
//! topo = 2x2 nvlink
//! planner = hierarchical
//! fault = straggler dev=1 factor_x10=35 from=4 to=9
//! lifecycle = spot dev=2 at=6 notice=3
//! job = arrival=0 iters=8 gpus=2 min=1 prio=3
//! ```

use crate::scenario::{
    FaultSpec, FuzzJob, GraphSpec, LayerSpec, LifecycleSpec, LinkProfile, PlannerChoice, Scenario,
    TopoSpec,
};
use std::fmt::Write as _;

/// Serializes a scenario to the replay text format.
pub fn to_text(sc: &Scenario) -> String {
    let mut out = String::from("# fastt-fuzz scenario v1\n");
    let _ = writeln!(out, "seed = {}", sc.seed);
    let _ = writeln!(out, "iters = {}", sc.iters);
    let _ = writeln!(out, "batch = {}", sc.graph.batch);
    let _ = writeln!(out, "conv_prefix = {}", sc.graph.conv_prefix);
    let layers: Vec<String> = sc
        .graph
        .layers
        .iter()
        .map(|l| match l {
            LayerSpec::Dense { width } => format!("dense:{width}"),
            LayerSpec::Fan { width, branches } => format!("fan:{width}x{branches}"),
            LayerSpec::Block => "block".to_string(),
            LayerSpec::Norm => "norm".to_string(),
        })
        .collect();
    let _ = writeln!(out, "layers = {}", layers.join(" "));
    let _ = writeln!(
        out,
        "topo = {}x{} {}",
        sc.topo.servers,
        sc.topo.gpus,
        sc.topo.links.as_str()
    );
    let _ = writeln!(out, "planner = {}", sc.planner.as_str());
    for f in &sc.faults {
        let line = match *f {
            FaultSpec::Straggler {
                dev,
                factor_x10,
                from,
                to,
            } => format!("straggler dev={dev} factor_x10={factor_x10} from={from} to={to}"),
            FaultSpec::LinkDegrade {
                src,
                dst,
                factor_x10,
                from,
                to,
            } => format!(
                "link_degrade src={src} dst={dst} factor_x10={factor_x10} from={from} to={to}"
            ),
            FaultSpec::Transient {
                dev,
                prob_pct,
                from,
                to,
            } => format!("transient dev={dev} prob_pct={prob_pct} from={from} to={to}"),
            FaultSpec::ProfileFail { dev, attempts } => {
                format!("profile_fail dev={dev} attempts={attempts}")
            }
            FaultSpec::Crash { dev, at } => format!("crash dev={dev} at={at}"),
            FaultSpec::MemPressure {
                dev,
                reserve_mib,
                from,
                to,
            } => format!("mem_pressure dev={dev} reserve_mib={reserve_mib} from={from} to={to}"),
            FaultSpec::LinkFlap {
                src,
                dst,
                prob_pct,
                from,
                to,
            } => format!("link_flap src={src} dst={dst} prob_pct={prob_pct} from={from} to={to}"),
            FaultSpec::Partition { server, at } => format!("partition server={server} at={at}"),
            FaultSpec::CollectiveStraggler {
                dev,
                factor_x10,
                from,
                to,
            } => format!(
                "collective_straggler dev={dev} factor_x10={factor_x10} from={from} to={to}"
            ),
            FaultSpec::NicDegrade {
                server,
                factor_x10,
                from,
                to,
            } => format!("nic_degrade server={server} factor_x10={factor_x10} from={from} to={to}"),
        };
        let _ = writeln!(out, "fault = {line}");
    }
    for l in &sc.lifecycle {
        let line = match *l {
            LifecycleSpec::Spot { dev, at, notice } => {
                format!("spot dev={dev} at={at} notice={notice}")
            }
            LifecycleSpec::Restore { dev, at } => format!("restore dev={dev} at={at}"),
            LifecycleSpec::Arrival { dev, at } => format!("arrival dev={dev} at={at}"),
            LifecycleSpec::HostArrival { gpus, at } => format!("host_arrival gpus={gpus} at={at}"),
        };
        let _ = writeln!(out, "lifecycle = {line}");
    }
    for j in &sc.jobs {
        let _ = writeln!(
            out,
            "job = arrival={} iters={} gpus={} min={} prio={}",
            j.arrival, j.iters, j.gpus, j.min_gpus, j.priority
        );
    }
    out
}

/// Key–value field accessor for one serialized entry line.
fn field(words: &[&str], key: &str) -> Result<u64, String> {
    words
        .iter()
        .find_map(|w| w.strip_prefix(key)?.strip_prefix('='))
        .ok_or_else(|| format!("missing field `{key}` in `{}`", words.join(" ")))?
        .parse::<u64>()
        .map_err(|e| format!("bad `{key}`: {e}"))
}

/// Parses the replay text format back into a [`Scenario`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse(text: &str) -> Result<Scenario, String> {
    let mut seed = None;
    let mut iters = None;
    let mut batch = None;
    let mut conv_prefix = 0u8;
    let mut layers = Vec::new();
    let mut topo = None;
    let mut planner = PlannerChoice::Portfolio;
    let mut faults = Vec::new();
    let mut lifecycle = Vec::new();
    let mut jobs = Vec::new();

    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("line {}: expected `key = value`", no + 1))?;
        let err = |e: String| format!("line {}: {e}", no + 1);
        match key {
            "seed" => seed = Some(value.parse::<u64>().map_err(|e| err(e.to_string()))?),
            "iters" => iters = Some(value.parse::<u64>().map_err(|e| err(e.to_string()))?),
            "batch" => batch = Some(value.parse::<u64>().map_err(|e| err(e.to_string()))?),
            "conv_prefix" => {
                conv_prefix = value.parse::<u8>().map_err(|e| err(e.to_string()))?;
            }
            "layers" => {
                for tok in value.split_whitespace() {
                    let layer = if let Some(w) = tok.strip_prefix("dense:") {
                        LayerSpec::Dense {
                            width: w.parse().map_err(|_| err(format!("bad layer `{tok}`")))?,
                        }
                    } else if let Some(spec) = tok.strip_prefix("fan:") {
                        let (w, b) = spec
                            .split_once('x')
                            .ok_or_else(|| err(format!("bad fan `{tok}`")))?;
                        LayerSpec::Fan {
                            width: w.parse().map_err(|_| err(format!("bad fan `{tok}`")))?,
                            branches: b.parse().map_err(|_| err(format!("bad fan `{tok}`")))?,
                        }
                    } else if tok == "block" {
                        LayerSpec::Block
                    } else if tok == "norm" {
                        LayerSpec::Norm
                    } else {
                        return Err(err(format!("unknown layer `{tok}`")));
                    };
                    layers.push(layer);
                }
            }
            "topo" => {
                let mut words = value.split_whitespace();
                let shape = words.next().ok_or_else(|| err("empty topo".into()))?;
                let (s, g) = shape
                    .split_once('x')
                    .ok_or_else(|| err(format!("bad topo `{shape}`")))?;
                let links = match words.next().unwrap_or("nvlink") {
                    "nvlink" => LinkProfile::Nvlink,
                    "pcie" => LinkProfile::Pcie,
                    "rdma" => LinkProfile::Rdma,
                    other => return Err(err(format!("unknown link profile `{other}`"))),
                };
                topo = Some(TopoSpec {
                    servers: s.parse().map_err(|_| err(format!("bad topo `{shape}`")))?,
                    gpus: g.parse().map_err(|_| err(format!("bad topo `{shape}`")))?,
                    links,
                });
            }
            "planner" => {
                planner = match value {
                    "flat" => PlannerChoice::Flat,
                    "portfolio" => PlannerChoice::Portfolio,
                    "hierarchical" => PlannerChoice::Hierarchical,
                    other => return Err(err(format!("unknown planner `{other}`"))),
                };
            }
            "fault" => {
                let words: Vec<&str> = value.split_whitespace().collect();
                let kind = *words.first().ok_or_else(|| err("empty fault".into()))?;
                let w = &words[1..];
                let f = |k: &str| field(w, k);
                let spec = match kind {
                    "straggler" => FaultSpec::Straggler {
                        dev: f("dev")? as u16,
                        factor_x10: f("factor_x10")? as u32,
                        from: f("from")?,
                        to: f("to")?,
                    },
                    "link_degrade" => FaultSpec::LinkDegrade {
                        src: f("src")? as u16,
                        dst: f("dst")? as u16,
                        factor_x10: f("factor_x10")? as u32,
                        from: f("from")?,
                        to: f("to")?,
                    },
                    "transient" => FaultSpec::Transient {
                        dev: f("dev")? as u16,
                        prob_pct: f("prob_pct")? as u8,
                        from: f("from")?,
                        to: f("to")?,
                    },
                    "profile_fail" => FaultSpec::ProfileFail {
                        dev: f("dev")? as u16,
                        attempts: f("attempts")? as u32,
                    },
                    "crash" => FaultSpec::Crash {
                        dev: f("dev")? as u16,
                        at: f("at")?,
                    },
                    "mem_pressure" => FaultSpec::MemPressure {
                        dev: f("dev")? as u16,
                        reserve_mib: f("reserve_mib")?,
                        from: f("from")?,
                        to: f("to")?,
                    },
                    "link_flap" => FaultSpec::LinkFlap {
                        src: f("src")? as u16,
                        dst: f("dst")? as u16,
                        prob_pct: f("prob_pct")? as u8,
                        from: f("from")?,
                        to: f("to")?,
                    },
                    "partition" => FaultSpec::Partition {
                        server: f("server")? as u16,
                        at: f("at")?,
                    },
                    "collective_straggler" => FaultSpec::CollectiveStraggler {
                        dev: f("dev")? as u16,
                        factor_x10: f("factor_x10")? as u32,
                        from: f("from")?,
                        to: f("to")?,
                    },
                    "nic_degrade" => FaultSpec::NicDegrade {
                        server: f("server")? as u16,
                        factor_x10: f("factor_x10")? as u32,
                        from: f("from")?,
                        to: f("to")?,
                    },
                    other => return Err(err(format!("unknown fault `{other}`"))),
                };
                faults.push(spec);
            }
            "lifecycle" => {
                let words: Vec<&str> = value.split_whitespace().collect();
                let kind = *words.first().ok_or_else(|| err("empty lifecycle".into()))?;
                let w = &words[1..];
                let f = |k: &str| field(w, k);
                let spec = match kind {
                    "spot" => LifecycleSpec::Spot {
                        dev: f("dev")? as u16,
                        at: f("at")?,
                        notice: f("notice")?,
                    },
                    "restore" => LifecycleSpec::Restore {
                        dev: f("dev")? as u16,
                        at: f("at")?,
                    },
                    "arrival" => LifecycleSpec::Arrival {
                        dev: f("dev")? as u16,
                        at: f("at")?,
                    },
                    "host_arrival" => LifecycleSpec::HostArrival {
                        gpus: f("gpus")? as u16,
                        at: f("at")?,
                    },
                    other => return Err(err(format!("unknown lifecycle `{other}`"))),
                };
                lifecycle.push(spec);
            }
            "job" => {
                let words: Vec<&str> = value.split_whitespace().collect();
                let f = |k: &str| field(&words, k);
                jobs.push(FuzzJob {
                    arrival: f("arrival")?,
                    iters: f("iters")?,
                    gpus: f("gpus")? as usize,
                    min_gpus: f("min")? as usize,
                    priority: f("prio")? as u8,
                });
            }
            other => return Err(format!("line {}: unknown key `{other}`", no + 1)),
        }
    }

    Ok(Scenario {
        seed: seed.ok_or("missing `seed`")?,
        iters: iters.ok_or("missing `iters`")?,
        graph: GraphSpec {
            batch: batch.ok_or("missing `batch`")?,
            conv_prefix,
            layers,
        },
        topo: topo.ok_or("missing `topo`")?,
        faults,
        lifecycle,
        planner,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly_over_many_generated_scenarios() {
        for i in 0..48 {
            let sc = Scenario::generate(7, i);
            let text = to_text(&sc);
            let back = parse(&text).unwrap_or_else(|e| panic!("scenario {i}: {e}\n{text}"));
            assert_eq!(sc, back, "scenario {i} did not round-trip:\n{text}");
            // and the text itself is a fixpoint
            assert_eq!(text, to_text(&back));
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("nonsense").is_err());
        assert!(parse("seed = 1\niters = 2\nbatch = 4\ntopo = 1x1 warp\n").is_err());
        assert!(parse("seed = 1\nfault = meteor dev=0\n").is_err());
    }
}
