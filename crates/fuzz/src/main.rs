//! CLI driver for `fastt-fuzz`.
//!
//! ```text
//! fastt-fuzz --seed 0 --count 200              sweep 200 generated scenarios
//! fastt-fuzz --replay fuzz/corpus/foo.fuzz     re-check one scenario file
//! fastt-fuzz --corpus fuzz/corpus              re-check every *.fuzz in a dir
//! fastt-fuzz --sabotage placement --out DIR    break an invariant on purpose,
//!                                              minimize, and write the repro
//! ```
//!
//! Exit status is non-zero iff any invariant violation was found.

use fastt_fuzz::oracle::{check, Sabotage, FAMILIES};
use fastt_fuzz::{minimize, replay, Scenario};
use fastt_telemetry::Collector;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    seed: u64,
    count: u64,
    sabotage: Sabotage,
    replay: Option<PathBuf>,
    corpus: Option<PathBuf>,
    out: Option<PathBuf>,
    minimize_budget: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0,
        count: 50,
        sabotage: Sabotage::None,
        replay: None,
        corpus: None,
        out: None,
        minimize_budget: 200,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--count" => args.count = value()?.parse().map_err(|e| format!("--count: {e}"))?,
            "--sabotage" => args.sabotage = Sabotage::parse(&value()?)?,
            "--replay" => args.replay = Some(PathBuf::from(value()?)),
            "--corpus" => args.corpus = Some(PathBuf::from(value()?)),
            "--out" => args.out = Some(PathBuf::from(value()?)),
            "--minimize-budget" => {
                args.minimize_budget = value()?
                    .parse()
                    .map_err(|e| format!("--minimize-budget: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Checks one scenario; on violation, minimizes and (when `out` is set)
/// writes the reproducer. Returns the number of violations.
fn run_one(
    label: &str,
    sc: &Scenario,
    sabotage: Sabotage,
    out: Option<&Path>,
    budget: usize,
    collector: &Collector,
    by_family: &mut BTreeMap<&'static str, u64>,
) -> usize {
    let violations = check(sc, sabotage, Some(collector));
    for v in &violations {
        *by_family.entry(v.family).or_insert(0) += 1;
        eprintln!("VIOLATION [{label}] {}: {}", v.family, v.detail);
    }
    if let Some(first) = violations.first() {
        let min = minimize(sc, sabotage, first.family, budget);
        let text = replay::to_text(&min.scenario);
        eprintln!(
            "minimized [{label}] {} after {} oracle runs: {} forward ops, {} faults, {} lifecycle, {} jobs",
            min.family,
            min.checks,
            min.scenario.graph.forward_op_count(),
            min.scenario.faults.len(),
            min.scenario.lifecycle.len(),
            min.scenario.jobs.len(),
        );
        if let Some(dir) = out {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("{}-{label}.fuzz", min.family.replace('_', "-")));
            match std::fs::write(&path, &text) {
                Ok(()) => eprintln!("reproducer written to {}", path.display()),
                Err(e) => eprintln!("failed to write reproducer: {e}"),
            }
        } else {
            eprintln!("--- reproducer ---\n{text}------------------");
        }
    }
    violations.len()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fastt-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    let collector = Collector::new();
    let mut by_family: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut total_violations = 0usize;
    let mut scenarios = 0u64;

    if let Some(path) = &args.replay {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| replay::parse(&t))
        {
            Ok(sc) => {
                scenarios += 1;
                total_violations += run_one(
                    &path.display().to_string(),
                    &sc,
                    args.sabotage,
                    args.out.as_deref(),
                    args.minimize_budget,
                    &collector,
                    &mut by_family,
                );
            }
            Err(e) => {
                eprintln!("fastt-fuzz: cannot replay {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    } else if let Some(dir) = &args.corpus {
        let mut files: Vec<PathBuf> = match std::fs::read_dir(dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "fuzz"))
                .collect(),
            Err(e) => {
                eprintln!("fastt-fuzz: cannot read corpus {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        };
        files.sort();
        for path in files {
            match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|t| replay::parse(&t))
            {
                Ok(sc) => {
                    scenarios += 1;
                    total_violations += run_one(
                        &path.display().to_string(),
                        &sc,
                        args.sabotage,
                        args.out.as_deref(),
                        args.minimize_budget,
                        &collector,
                        &mut by_family,
                    );
                }
                Err(e) => {
                    eprintln!("fastt-fuzz: skipping {}: {e}", path.display());
                    total_violations += 1;
                }
            }
        }
    } else {
        for i in 0..args.count {
            let sc = Scenario::generate(args.seed, i);
            scenarios += 1;
            total_violations += run_one(
                &format!("seed{}-idx{i}", args.seed),
                &sc,
                args.sabotage,
                args.out.as_deref(),
                args.minimize_budget,
                &collector,
                &mut by_family,
            );
        }
    }

    println!("fastt-fuzz: {scenarios} scenarios checked, {total_violations} violations");
    for family in FAMILIES {
        println!(
            "  {family}: {}",
            by_family.get(family).copied().unwrap_or(0)
        );
    }
    if total_violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
