//! `fastt-fuzz` — seeded scenario enumeration, invariant fuzzing, and
//! automatic minimization for the FastT stack.
//!
//! The fuzzer enumerates the *full* scenario space the rest of the repo
//! only samples pointwise: graph shape × topology × fault/lifecycle
//! schedule × planner choice × fleet workload, all derived from one
//! [`fastt_sim::SeedStream`] so every scenario is reproducible from
//! `(root_seed, index)` alone. Each scenario drives a real
//! [`fastt::TrainingSession`] (and, when a workload is present, a real
//! [`fastt::ClusterManager`]) and is property-checked against the six
//! invariant families in [`oracle::FAMILIES`].
//!
//! On violation, [`minimize()`] delta-debugs the scenario along every
//! generation axis to a locally minimal reproducer, and [`replay`]
//! serializes it to a self-contained text file that replays
//! byte-for-byte — the committed files under `fuzz/corpus/` are exactly
//! such reproducers, re-run on every `cargo test`.
//!
//! ```text
//! cargo run -p fastt-fuzz -- --seed 0 --count 200          # sweep
//! cargo run -p fastt-fuzz -- --replay fuzz/corpus/x.fuzz   # one file
//! ```

pub mod minimize;
pub mod oracle;
pub mod replay;
pub mod scenario;

pub use minimize::{minimize, Minimized};
pub use oracle::{check, Sabotage, Violation, FAMILIES};
pub use scenario::Scenario;
