//! Tier-1 regression corpus: every minimized reproducer committed under
//! `fuzz/corpus/` replays through the full oracle on every `cargo test`,
//! and the sabotage reproducer is re-derived from scratch to pin the
//! whole catch → minimize → serialize pipeline.

use fastt_fuzz::oracle::{check, Sabotage, PLACEMENT_VALIDITY};
use fastt_fuzz::{minimize, replay, Scenario};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("fuzz/corpus must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fuzz"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "fuzz/corpus is empty");
    files
}

#[test]
fn every_committed_reproducer_replays_clean() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let sc = replay::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let violations = check(&sc, Sabotage::None, None);
        assert!(
            violations.is_empty(),
            "{} regressed: {violations:?}",
            path.display()
        );
    }
}

#[test]
fn sabotaged_invariant_is_caught_and_minimized_to_committed_reproducer() {
    // The intentionally-broken invariant (test-only hook) must be caught
    // on a generated scenario...
    let sc = (0..8)
        .map(|i| Scenario::generate(7, i))
        .find(|sc| {
            check(sc, Sabotage::Placement, None)
                .iter()
                .any(|v| v.family == PLACEMENT_VALIDITY)
        })
        .expect("placement sabotage must fire within the first 8 scenarios");

    // ...auto-minimized to a tiny reproducer...
    let min = minimize(&sc, Sabotage::Placement, PLACEMENT_VALIDITY, 200);
    assert!(
        min.scenario.faults.len() <= 3,
        "reproducer carries {} faults",
        min.scenario.faults.len()
    );
    assert!(
        min.scenario.graph.forward_op_count() <= 8,
        "reproducer carries {} forward ops",
        min.scenario.graph.forward_op_count()
    );

    // ...that replays deterministically from its committed scenario file.
    let committed_path = corpus_dir().join("sabotage-placement.fuzz");
    let committed = std::fs::read_to_string(&committed_path).unwrap();
    assert_eq!(
        replay::to_text(&min.scenario),
        committed,
        "minimizer no longer reproduces {}",
        committed_path.display()
    );
    let replayed = replay::parse(&committed).unwrap();
    assert!(
        check(&replayed, Sabotage::Placement, None)
            .iter()
            .any(|v| v.family == PLACEMENT_VALIDITY),
        "committed sabotage reproducer no longer fires"
    );
    assert!(
        check(&replayed, Sabotage::None, None).is_empty(),
        "sabotage reproducer must be clean without the hook"
    );
}
