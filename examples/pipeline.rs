//! GPipe-style pipeline parallelism on top of FastT's machinery — the
//! extension the paper sketches in Sec. 7. A VGG-19 mini-batch of 32 is
//! split into micro-batches over 4 GPUs; naive model parallelism leaves
//! three stages idle at any time, pipelining fills the bubbles.
//!
//! ```bash
//! cargo run --release --example pipeline
//! ```

use fastt::{model_parallel_plan, pipeline_plan};
use fastt_cluster::Topology;
use fastt_models::Model;
use fastt_sim::{HardwarePerf, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    let mini_batch = 32u64;

    // Naive model parallelism: the whole mini-batch flows through the
    // stages once.
    let full = Model::Vgg19.training_graph(mini_batch);
    let mp = model_parallel_plan(&full, &topo, &hw);
    let mp_tr = mp.simulate(&topo, &hw, &SimConfig::default())?;
    println!(
        "model parallel (1 batch)  : {:.2} ms/iter, utilization {:?}",
        mp_tr.makespan * 1e3,
        mp_tr
            .utilization()
            .iter()
            .take(4)
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect::<Vec<_>>()
    );

    for micro_batches in [2u32, 4, 8] {
        let micro = Model::Vgg19.training_graph(mini_batch / micro_batches as u64);
        let pipe = pipeline_plan(&micro, micro_batches, &topo, &hw)?;
        let tr = pipe.simulate(&topo, &hw, &SimConfig::default())?;
        println!(
            "pipeline ({micro_batches} micro-batches): {:.2} ms/iter, utilization {:?}",
            tr.makespan * 1e3,
            tr.utilization()
                .iter()
                .take(4)
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
