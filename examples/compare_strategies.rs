//! Head-to-head comparison of deployment strategies on one model — the
//! single-model version of the paper's Fig. 3: data parallelism, greedy
//! model parallelism, a GDP-style one-shot placement, black-box searches
//! (cross-entropy à la Post, MCMC à la FlexFlow), and FastT.
//!
//! ```bash
//! cargo run --release --example compare_strategies
//! ```

use fastt::search::{cem_search, gdp_place, mcmc_search};
use fastt::{data_parallel_plan, model_parallel_plan, SessionConfig, TrainingSession};
use fastt_cluster::Topology;
use fastt_cost::CostModels;
use fastt_graph::replicate;
use fastt_models::Model;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = Model::InceptionV3;
    let gpus = 4u16;
    let global_batch = model.paper_batch();
    let topo = Topology::single_server(gpus);
    let hw = HardwarePerf::new();

    println!("{model} on {gpus} GPUs, global batch {global_batch}\n");
    println!(
        "{:<28} {:>12} {:>14} {:>8}",
        "strategy", "s/iteration", "samples/s", "evals"
    );

    let report = |name: &str, iter: f64, evals: u32| {
        println!(
            "{name:<28} {iter:>12.4} {:>14.1} {evals:>8}",
            global_batch as f64 / iter
        );
    };

    // Data parallelism (per-replica batch = global / gpus).
    let replica = model.training_graph(global_batch / gpus as u64);
    let rep = replicate(&replica, gpus as u32)?;
    let dp = data_parallel_plan(&rep, &topo);
    let dp_iter = dp.simulate(&topo, &hw, &SimConfig::default())?.makespan;
    report("data parallel", dp_iter, 0);

    // Greedy model parallelism on the whole-batch graph.
    let whole = model.training_graph(global_batch);
    let mp = model_parallel_plan(&whole, &topo, &hw);
    let mp_iter = mp.simulate(&topo, &hw, &SimConfig::default())?.makespan;
    report("model parallel (greedy)", mp_iter, 0);

    // GDP-style one-shot rank/EFT placement (needs bootstrapped costs).
    let mut cost = CostModels::new();
    for d in topo.gpu_ids() {
        let p = Placement::uniform(whole.op_count(), d);
        if let Ok(t) = simulate(
            &whole,
            &topo,
            &p,
            &hw,
            ExecPolicy::Fifo,
            &SimConfig::default(),
        ) {
            cost.update_from_trace(&whole, &t);
        }
    }
    let gdp = gdp_place(&whole, &topo, &cost, &hw);
    report("GDP-style (white box)", gdp.best_time, gdp.evals_used);

    // Black-box searches over the whole-batch graph (model parallelism
    // only — their published solution space).
    let post = cem_search(&whole, &topo, &hw, 10, 10, 0.25, 7);
    report(
        "Post-style (cross entropy)",
        post.best_time,
        post.evals_used,
    );

    // FlexFlow-style MCMC over the *replicated* graph, seeded from DP.
    let ff = mcmc_search(&rep.graph, &topo, &hw, Some(&dp.placement), 300, 0.03, 9);
    report("FlexFlow-style (MCMC)", ff.best_time, ff.evals_used);

    // FastT.
    let mut session = TrainingSession::new(&replica, topo.clone(), hw, SessionConfig::default())?;
    let r = session.pre_train()?;
    report("FastT", r.final_iter_time, 0);
    println!(
        "\nFastT strategy computed in {:.2}s of wall clock; the searches above each\n\
         consumed the listed number of full (simulated) training iterations.",
        r.strategy_calc_secs
    );
    Ok(())
}
