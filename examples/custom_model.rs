//! Bringing your own model: build a custom network with [`LayerStack`],
//! derive its training graph, and let FastT deploy it — no framework
//! integration required, exactly like the paper's "transparent module"
//! promise (developers never modify their model code).
//!
//! ```bash
//! cargo run --release --example custom_model
//! ```

use fastt::{SessionConfig, TrainingSession};
use fastt_cluster::Topology;
use fastt_graph::build_training_graph;
use fastt_models::LayerStack;
use fastt_sim::HardwarePerf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom two-branch CNN: a wide convolutional branch and a narrow
    // one, concatenated before the classifier — the kind of architecture
    // where hand-placing ops gets tedious.
    let mut s = LayerStack::new("images", [64, 64, 64, 3]);
    let stem = s.mark();

    s.conv("wide/conv1", 96, 5, 2)
        .relu("wide/relu1")
        .conv("wide/conv2", 128, 3, 1)
        .relu("wide/relu2")
        .pool("wide/pool", 2, 2);
    let wide = s.mark();

    s.goto(&stem)
        .conv("narrow/conv1", 32, 3, 2)
        .relu("narrow/relu1")
        .pool("narrow/pool", 2, 2);
    s.concat("merge", &[wide]);

    s.global_pool("gap");
    s.fc("classifier", 100).softmax("probs");
    let forward = s.finish_with_loss("loss");

    // Reverse-mode differentiation + optimizer updates, automatically.
    let training = build_training_graph(&forward)?;
    println!(
        "custom model: {} forward ops -> {} training ops",
        forward.op_count(),
        training.op_count()
    );

    // Deploy over 4 simulated GPUs.
    let topo = Topology::single_server(4);
    let mut session = TrainingSession::new(
        &training,
        topo.clone(),
        HardwarePerf::new(),
        SessionConfig::default(),
    )?;
    let report = session.pre_train()?;
    println!(
        "FastT deployment: {:.2} ms/iteration after {} rounds",
        report.final_iter_time * 1e3,
        report.rounds
    );
    println!("history (s/iter): {:?}", report.history);
    println!("splits: {:?}", session.current_plan().splits);
    println!(
        "ops per device: {:?}",
        session.current_plan().placement.op_histogram(&topo)
    );
    Ok(())
}
