//! Training a model that does not fit on a single GPU: BERT-large at a
//! global batch of 48 (the paper's Table 3 scenario). Data parallelism runs
//! out of memory; FastT automatically falls back to model parallelism and
//! then optimizes the deployment across both GPUs.
//!
//! ```bash
//! cargo run --release --example large_model
//! ```

use fastt::{data_parallel_plan_on, SessionConfig, TrainingSession};
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::replicate;
use fastt_models::Model;
use fastt_sim::{HardwarePerf, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();
    let global_batch = 48u64;

    // Data parallelism needs a batch-24 replica per GPU...
    let replica_graph = Model::BertLarge.training_graph(global_batch / 2);
    let rep = replicate(&replica_graph, 2)?;
    let dp = data_parallel_plan_on(&rep, &topo, DeviceId(0));
    match dp.simulate(&topo, &hw, &SimConfig::default()) {
        Ok(t) => println!("data parallel: {:.3} s/iteration (unexpected!)", t.makespan),
        Err(e) => println!("data parallel: {e}"),
    }

    // ...while FastT receives the whole-batch graph, notices that neither a
    // single GPU nor data parallelism can host it, starts from greedy model
    // parallelism, and optimizes from there.
    let graph = Model::BertLarge.training_graph(global_batch);
    let mut session = TrainingSession::new(
        &graph,
        topo.clone(),
        hw.clone(),
        SessionConfig {
            dp_ps: Some(DeviceId(0)),
            ..SessionConfig::default()
        },
    )?;
    let report = session.pre_train()?;
    println!(
        "FastT        : {:.3} s/iteration at global batch {global_batch}",
        report.final_iter_time
    );

    let plan = session.current_plan();
    let trace = plan.simulate(&topo, &hw, &SimConfig::default())?;
    println!(
        "  peak memory per device: {:?} GB",
        trace
            .peak_mem
            .iter()
            .map(|b| format!("{:.1}", *b as f64 / (1u64 << 30) as f64))
            .collect::<Vec<_>>()
    );
    println!(
        "  ops per device        : {:?}",
        plan.placement.op_histogram(&topo)
    );
    Ok(())
}
