//! Quickstart: run the full FastT workflow on a benchmark model over a
//! simulated 2-GPU server and compare against default data parallelism.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fastt::{data_parallel_plan, SessionConfig, TrainingSession};
use fastt_cluster::Topology;
use fastt_graph::replicate;
use fastt_models::Model;
use fastt_sim::{HardwarePerf, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-GPU server (V100s + NVLink, CPU host attached over PCIe).
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();

    // The per-iteration training graph of AlexNet at batch 128 per replica.
    let model = Model::AlexNet;
    let graph = model.training_graph(128);
    println!(
        "{model}: {} ops, {} edges, {:.1} M parameters",
        graph.op_count(),
        graph.edge_count(),
        graph.total_param_bytes() as f64 / 4e6
    );

    // Baseline: TF-slim style data parallelism (one replica per GPU,
    // variables on the CPU parameter server).
    let rep = replicate(&graph, 2)?;
    let dp = data_parallel_plan(&rep, &topo);
    let dp_trace = dp.simulate(&topo, &hw, &SimConfig::default())?;
    println!(
        "data parallel : {:.2} ms/iteration ({:.0} samples/s)",
        dp_trace.makespan * 1e3,
        dp_trace.samples_per_sec(256)
    );

    // FastT: bootstrap cost models by profiling, compute placement +
    // execution order with DPOS/OS-DPOS, activate with rollback protection.
    let mut session = TrainingSession::new(&graph, topo.clone(), hw, SessionConfig::default())?;
    let report = session.pre_train()?;
    println!(
        "FastT         : {:.2} ms/iteration ({:.0} samples/s)",
        report.final_iter_time * 1e3,
        256.0 / report.final_iter_time
    );
    println!(
        "  pre-training: {} rounds, {} activations, {} rollbacks, {:.2}s strategy computation",
        report.rounds, report.activations, report.rollbacks, report.strategy_calc_secs
    );

    let plan = session.current_plan();
    println!("  split list  : {:?}", plan.splits);
    println!("  ops per GPU : {:?}", plan.placement.op_histogram(&topo));
    println!(
        "  speed-up    : {:.1}%",
        (dp_trace.makespan / report.final_iter_time - 1.0) * 100.0
    );
    Ok(())
}
