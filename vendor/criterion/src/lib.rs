//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the external `criterion` crate cannot be fetched. This vendored crate
//! implements the subset of its API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{sample_size, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId`, and
//! [`black_box`] — with a simple wall-clock harness: per benchmark it warms
//! up once, then reports the mean over `sample_size` timed runs (capped at
//! ~2 s per benchmark).
//!
//! Invoked with `--test` (as `cargo test` does for `harness = false` bench
//! targets) it runs each benchmark exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value alone.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(name: S, p: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Mean seconds per iteration of the last `iter` call.
    mean: f64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock seconds per call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean = 0.0;
            return;
        }
        black_box(f()); // warmup
        let budget = Duration::from_secs(2);
        let start = Instant::now();
        let mut runs = 0usize;
        while runs < self.samples && start.elapsed() < budget {
            black_box(f());
            runs += 1;
        }
        self.mean = start.elapsed().as_secs_f64() / runs.max(1) as f64;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // first free-standing (non-flag) argument filters benchmark names,
        // mirroring criterion's CLI
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-') && *a != "--bench")
            .cloned();
        Criterion {
            sample_size: 10,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, self.test_mode, &self.filter, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            parent: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    test_mode: bool,
    filter: &Option<String>,
    mut f: F,
) {
    if let Some(needle) = filter {
        if !name.contains(needle.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples,
        test_mode,
        mean: 0.0,
    };
    f(&mut b);
    if test_mode {
        println!("bench {name}: ok (test mode)");
    } else {
        println!("bench {name}: {} / iter", fmt_time(b.mean));
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.sample_size,
            self.parent.test_mode,
            &self.parent.filter,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size,
            self.parent.test_mode,
            &self.parent.filter,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in this harness; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_mean() {
        let mut b = Bencher {
            samples: 5,
            test_mode: false,
            mean: 0.0,
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert!(b.mean > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = 0;
        g.bench_function("f", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
