//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the external `rand` crate cannot be fetched. This vendored crate provides
//! the small slice of its API the workspace actually uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}` —
//! backed by a deterministic xoshiro256\*\* generator.
//!
//! The value streams differ from upstream `rand`'s `StdRng` (ChaCha12), but
//! every consumer in this workspace only relies on *determinism given a
//! seed*, never on specific values, so this is a faithful substitute.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value of a [`Standard`]-distributed type
    /// (`rng.gen::<f64>()` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`0..n`, `0.0..1.0`, `1..=k`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, n)` via Lemire-style rejection.
fn uniform_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full-width range of a 64-bit type
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u16, u32, u64, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256\*\* seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            StdRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..100 {
            let v = r.gen_range(1..=2usize);
            assert!((1..=2).contains(&v));
        }
        let v: u16 = r.gen_range(0..4u16);
        assert!(v < 4);
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(0.01..0.2);
            assert!((0.01..0.2).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
