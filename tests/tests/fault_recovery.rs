//! Cross-crate fault-tolerance tests: scripted infrastructure faults in the
//! simulator must drive the session's detection → blacklist → re-plan →
//! degrade machinery, deterministically.

use std::sync::Arc;

use fastt::{FastTError, RecoveryEvent, SessionConfig, TrainingSession};
use fastt_cluster::{DeviceId, Topology};
use fastt_models::Model;
use fastt_sim::{Fault, FaultKind, FaultSchedule, HardwarePerf};

const D0: DeviceId = DeviceId(0);
const D1: DeviceId = DeviceId(1);

fn quick(faults: FaultSchedule) -> SessionConfig {
    SessionConfig {
        profile_iters: 2,
        max_rounds: 2,
        faults: Some(Arc::new(faults)),
        ..SessionConfig::default()
    }
}

#[test]
fn device_crash_mid_training_blacklists_and_replans() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(4);
    let faults = FaultSchedule::none().with(Fault::from(FaultKind::Crash { device: D1 }, 8));
    let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
    s.pre_train().unwrap();
    let avg = s.train_normal(20, 5).unwrap();
    assert!(avg.is_finite() && avg > 0.0);

    // the dead device is blacklisted, the cluster shrank, training went on
    assert!(s.topology().is_failed(D1));
    assert_eq!(s.topology().gpu_count(), 3);
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::DeviceFailed { device, .. } if *device == D1)));
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Replanned { survivors: 3, .. })));
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Recovered { .. })));

    // the active plan is valid over the surviving topology (validation
    // rejects any op on a failed device) and never touches the dead GPU
    let plan = s.current_plan();
    plan.placement.validate(&plan.graph, s.topology()).unwrap();
    assert!(!plan.placement.devices_used().contains(&D1));
}

#[test]
fn recovery_decisions_are_deterministic() {
    let run = || {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(4);
        let faults = FaultSchedule::seeded(21, 4, 40, true);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
        s.pre_train().unwrap();
        s.train_normal(25, 5).unwrap();
        (
            s.recovery_log().to_vec(),
            s.measured_iter_time(),
            s.iterations_run(),
            s.topology().failed_devices(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "recovery logs must replay identically");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    assert!(
        !a.0.is_empty(),
        "the seeded chaos scenario should exercise recovery"
    );
}

#[test]
fn transient_profile_failures_are_retried_not_fatal() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(2);
    let faults = FaultSchedule::none().with(Fault::windowed(
        FaultKind::ProfileFailure {
            device: D0,
            fail_attempts: 2,
        },
        0,
        100,
    ));
    let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
    let avg = s.profile(3).unwrap();
    assert!(avg.is_finite() && avg > 0.0);
    let retries = s
        .recovery_log()
        .iter()
        .filter(|e| matches!(e, RecoveryEvent::Retry { .. }))
        .count();
    assert!(retries >= 2, "each iteration needs 2 retried attempts");
    assert!(
        !s.recovery_log()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::DeviceFailed { .. })),
        "a transient hiccup within the budget must not blacklist"
    );
    assert_eq!(s.topology().failed_devices(), vec![]);
}

#[test]
fn profile_failure_past_the_retry_budget_blacklists_instead_of_looping() {
    // A profile-failure fault whose threshold exceeds the retry budget used
    // to live-lock the session: the device was blacklisted, re-planning
    // moved the work, but the still-active fault re-failed every subsequent
    // run with the attempt counter reset. The fault must go inert once its
    // device is out of the placement.
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(2);
    let faults = FaultSchedule::none().with(Fault::from(
        FaultKind::ProfileFailure {
            device: D1,
            fail_attempts: u32::MAX - 1,
        },
        0,
    ));
    let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
    let avg = s.train_normal(10, 5).unwrap();
    assert!(avg.is_finite() && avg > 0.0);
    assert!(s.topology().is_failed(D1));
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::DeviceFailed { device, .. } if *device == D1)));
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Recovered { .. })));
    let plan = s.current_plan();
    plan.placement.validate(&plan.graph, s.topology()).unwrap();
    assert!(!plan.placement.devices_used().contains(&D1));
}

#[test]
fn losing_every_gpu_is_a_typed_dead_end() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(2);
    let faults = FaultSchedule::none()
        .with(Fault::from(FaultKind::Crash { device: D0 }, 3))
        .with(Fault::from(FaultKind::Crash { device: D1 }, 4));
    let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
    let err = s.train_normal(20, 5).unwrap_err();
    assert!(
        matches!(err, FastTError::ClusterExhausted),
        "expected ClusterExhausted, got {err}"
    );
}

#[test]
fn degenerate_arguments_are_typed_errors_not_nan() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(2);
    let mut s = TrainingSession::new(
        &g,
        topo,
        HardwarePerf::new(),
        SessionConfig {
            profile_iters: 2,
            max_rounds: 2,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(s.profile(0), Err(FastTError::InvalidArgument(_))));
    assert!(matches!(
        s.train_normal(0, 5),
        Err(FastTError::InvalidArgument(_))
    ));
    assert!(matches!(
        s.train_normal(5, 0),
        Err(FastTError::InvalidArgument(_))
    ));
    // and a well-formed call still works afterwards
    assert!(s.profile(1).unwrap().is_finite());
}
