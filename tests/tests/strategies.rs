//! Integration tests of the strategy layer: baselines, DPOS plans, OS-DPOS
//! splits, and the comparator searchers — all validated end-to-end against
//! the simulator.

use fastt::search::{cem_search, gdp_place, mcmc_search, random_search, reinforce_search};
use fastt::{data_parallel_plan, dpos_plan, model_parallel_plan, os_dpos, OsDposOptions};
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::replicate;
use fastt_models::Model;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

fn profiled_costs(graph: &fastt_graph::Graph, topo: &Topology) -> CostModels {
    let hw = HardwarePerf::new();
    let mut cost = CostModels::new();
    for d in topo.gpu_ids() {
        let p = Placement::uniform(graph.op_count(), d);
        if let Ok(tr) = simulate(
            graph,
            topo,
            &p,
            &hw,
            ExecPolicy::Fifo,
            &SimConfig::default(),
        ) {
            cost.update_from_trace(graph, &tr);
        }
    }
    // round-robin run to seed communication costs
    let mut p = Placement::uniform(graph.op_count(), DeviceId(0));
    for (i, op) in graph.op_ids().enumerate() {
        p.set(op, DeviceId((i % topo.gpu_count()) as u16));
    }
    if let Ok(tr) = simulate(
        graph,
        topo,
        &p,
        &hw,
        ExecPolicy::Fifo,
        &SimConfig::default(),
    ) {
        cost.update_from_trace(graph, &tr);
    }
    cost
}

#[test]
fn dp_plan_matches_manual_expectations() {
    let graph = Model::LeNet.training_graph(16);
    let topo = Topology::single_server(2);
    let rep = replicate(&graph, 2).unwrap();
    let plan = data_parallel_plan(&rep, &topo);
    // variables live on the CPU host
    let host = topo.host_of(0).unwrap();
    let w = rep.graph.by_name("conv1/weights").unwrap();
    assert_eq!(plan.placement.device_of(w), host);
    // replica ops live on their GPUs
    let c0 = rep.graph.by_name("rep0/conv1").unwrap();
    let c1 = rep.graph.by_name("rep1/conv1").unwrap();
    assert_eq!(plan.placement.device_of(c0), DeviceId(0));
    assert_eq!(plan.placement.device_of(c1), DeviceId(1));
}

#[test]
fn dp_single_replica_stays_on_gpu() {
    let graph = Model::LeNet.training_graph(16);
    let topo = Topology::single_server(1);
    let rep = replicate(&graph, 1).unwrap();
    let plan = data_parallel_plan(&rep, &topo);
    for (op, d) in plan.placement.iter() {
        assert!(
            !topo.is_host(d),
            "{} placed on host",
            rep.graph.op_ref(op).name
        );
    }
}

#[test]
fn model_parallel_balances_memory() {
    let graph = Model::BertLarge.training_graph(8);
    let topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    let plan = model_parallel_plan(&graph, &topo, &hw);
    plan.placement.validate(&graph, &topo).unwrap();
    let tr = plan
        .simulate(
            &topo,
            &hw,
            &SimConfig {
                check_memory: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
    let peaks: Vec<u64> = topo.gpu_ids().map(|d| tr.peak_mem[d.index()]).collect();
    let max = *peaks.iter().max().unwrap() as f64;
    let min = *peaks.iter().min().unwrap() as f64;
    assert!(max / min.max(1.0) < 4.0, "imbalanced MP peaks: {peaks:?}");
}

#[test]
fn dpos_plan_beats_or_matches_single_device_on_parallel_models() {
    // With full cost models, DPOS over 4 GPUs must beat everything-on-one.
    let graph = Model::InceptionV3.training_graph(8);
    let topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    let cost = profiled_costs(&graph, &topo);
    let plan = dpos_plan(&graph, &topo, &cost, &hw);
    let dpos_time = plan
        .simulate(&topo, &hw, &SimConfig::default())
        .unwrap()
        .makespan;
    let single = Placement::uniform(graph.op_count(), DeviceId(0));
    let single_time = simulate(
        &graph,
        &topo,
        &single,
        &hw,
        ExecPolicy::Fifo,
        &SimConfig::default(),
    )
    .unwrap()
    .makespan;
    assert!(
        dpos_time <= single_time,
        "DPOS {dpos_time} vs single-device {single_time}"
    );
}

#[test]
fn os_dpos_split_list_is_replayable() {
    // Every accepted split names an op that existed in the (running) graph,
    // and the final graph contains its parts.
    let graph = Model::Vgg19.training_graph(16);
    let topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    let mut cost = profiled_costs(&graph, &topo);
    let plan = os_dpos(
        &graph,
        &topo,
        &mut cost,
        &hw,
        &OsDposOptions::for_topology(&topo),
    );
    for dec in &plan.splits {
        assert!(dec.parts >= 2);
        let part0 = format!("{}.part0", dec.op_name);
        assert!(
            plan.graph.by_name(&part0).is_some()
                // unless a later split split the part again
                || plan.graph.by_name(&format!("{part0}.part0")).is_some(),
            "missing part for {dec}"
        );
    }
    plan.placement.validate(&plan.graph, &topo).unwrap();
}

#[test]
fn all_searchers_return_valid_executable_placements() {
    let graph = Model::LeNet.training_graph(16);
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();
    let cost = profiled_costs(&graph, &topo);

    let results = [
        ("random", random_search(&graph, &topo, &hw, 6, 1)),
        ("reinforce", reinforce_search(&graph, &topo, &hw, 3, 4, 2)),
        ("cem", cem_search(&graph, &topo, &hw, 3, 4, 0.5, 3)),
        ("mcmc", mcmc_search(&graph, &topo, &hw, None, 10, 0.1, 4)),
        ("gdp", gdp_place(&graph, &topo, &cost, &hw)),
    ];
    for (name, r) in results {
        r.placement
            .validate(&graph, &topo)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            r.best_time.is_finite(),
            "{name} found no feasible placement"
        );
        assert!(r.evals_used >= 1, "{name} reported no evaluations");
        // no searcher may use the CPU host as a compute device
        for (op, d) in r.placement.iter() {
            assert!(
                !topo.is_host(d),
                "{name} placed `{}` on the host",
                graph.op_ref(op).name
            );
        }
    }
}

#[test]
fn white_box_methods_use_fewer_evaluations() {
    // The paper's core resource argument: FastT/GDP compute strategies
    // without executing candidate deployments; black-box searches burn
    // training iterations.
    let graph = Model::LeNet.training_graph(8);
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();
    let cost = profiled_costs(&graph, &topo);
    let gdp = gdp_place(&graph, &topo, &cost, &hw);
    let post = cem_search(&graph, &topo, &hw, 5, 8, 0.25, 5);
    let rl = reinforce_search(&graph, &topo, &hw, 5, 8, 6);
    assert_eq!(gdp.evals_used, 1);
    assert!(post.evals_used >= 40);
    assert!(rl.evals_used >= 40);
}
