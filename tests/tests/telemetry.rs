//! Cross-crate telemetry acceptance tests: a session with an attached
//! in-memory collector must surface every lifecycle stage as structured
//! events, and the drift path of normal training must be observable.

use fastt::{SessionConfig, TrainingSession};
use fastt_cluster::Topology;
use fastt_models::Model;
use fastt_sim::HardwarePerf;
use fastt_telemetry::{Collector, MemorySink, MetricValue};
use std::sync::Arc;

fn quick_config() -> SessionConfig {
    SessionConfig {
        profile_iters: 2,
        max_rounds: 3,
        ..SessionConfig::default()
    }
}

fn session_with_sink(
    model: Model,
    batch: u64,
) -> (TrainingSession, Arc<MemorySink>, Arc<Collector>) {
    let g = model.training_graph(batch);
    let topo = Topology::single_server(2);
    let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick_config()).unwrap();
    let sink = Arc::new(MemorySink::with_default_capacity());
    let col = Arc::new(Collector::new().with_sink(sink.clone()));
    s.attach_collector(col.clone());
    (s, sink, col)
}

#[test]
fn pre_train_emits_every_lifecycle_kind() {
    let (mut s, sink, col) = session_with_sink(Model::LeNet, 32);
    let report = s.pre_train().unwrap();

    // the full lifecycle is visible as events
    assert!(!sink.events_of("session.start").is_empty());
    assert!(!sink.events_of("session.round").is_empty());
    assert!(!sink.events_of("session.candidate").is_empty());
    let strategy_changes =
        sink.events_of("session.activation").len() + sink.events_of("session.rollback").len();
    assert!(
        strategy_changes >= 1,
        "at least one activation or rollback must be recorded \
         (report: {} activations, {} rollbacks)",
        report.activations,
        report.rollbacks
    );
    assert!(!sink.events_of("session.pre_train_done").is_empty());
    assert!(
        !sink.events_of("cost.error").is_empty(),
        "cost models must be scored against fresh traces"
    );
    // scheduler decision traces and simulator summaries ride along
    assert!(!sink.events_of("dpos.place").is_empty());
    assert!(!sink.events_of("sim.iteration").is_empty());

    // events counts match the report
    assert_eq!(
        sink.events_of("session.activation").len(),
        report.activations as usize
    );
    assert_eq!(
        sink.events_of("session.rollback").len(),
        report.rollbacks as usize
    );
    assert_eq!(
        sink.events_of("session.round").len(),
        report.rounds as usize
    );

    // the metrics registry accumulated alongside
    assert!(matches!(
        col.metrics().get("sim.iterations"),
        Some(MetricValue::Counter(n)) if n > 0
    ));
    assert!(matches!(
        col.metrics().get("cost.mape"),
        Some(MetricValue::Gauge(g)) if g.is_finite()
    ));
    assert!(matches!(
        col.metrics().get("dpos.ops_placed"),
        Some(MetricValue::Counter(n)) if n > 0
    ));
}

#[test]
fn pre_train_builds_profile_tree_and_per_planner_latency() {
    let (mut s, _sink, col) = session_with_sink(Model::LeNet, 32);
    s.pre_train().unwrap();

    // The instrumented hot paths rolled up into a profile tree: the
    // portfolio fan-out on the main thread, each planner's plan phase
    // (with DPOS's inner phases nested under it) on its worker thread.
    let paths: Vec<String> = col
        .profiler()
        .snapshot()
        .into_iter()
        .map(|e| e.path)
        .collect();
    assert!(
        paths.iter().any(|p| p == "portfolio"),
        "portfolio phase missing: {paths:?}"
    );
    assert!(
        paths.iter().any(|p| p == "portfolio > cache_pass"),
        "cache_pass phase missing: {paths:?}"
    );
    assert!(
        paths
            .iter()
            .any(|p| p.starts_with("plan > ") && p.ends_with("dpos.place > eft_scan")),
        "nested DPOS phases missing: {paths:?}"
    );
    assert!(
        paths.iter().any(|p| p.contains("sim.event_loop")),
        "simulator phases missing: {paths:?}"
    );

    // planner.latency is recorded both in aggregate and per planner name,
    // in fine (sub-µs-capable) buckets.
    let Some(MetricValue::Histogram(agg)) = col.metrics().get("planner.latency") else {
        panic!("planner.latency histogram missing");
    };
    assert!(agg.count > 0);
    assert_eq!(agg.bounds[0], 1e-8, "fine buckets start at 10ns");
    let per: Vec<(String, u64)> = col
        .metrics()
        .snapshot()
        .into_iter()
        .filter_map(|(k, v)| match v {
            MetricValue::Histogram(h) if k.starts_with("planner.latency.") => Some((k, h.count)),
            _ => None,
        })
        .collect();
    assert!(
        !per.is_empty(),
        "per-planner latency series missing: {:?}",
        col.metrics()
            .snapshot()
            .iter()
            .map(|(k, _)| k)
            .collect::<Vec<_>>()
    );
    let total: u64 = per.iter().map(|(_, c)| c).sum();
    assert_eq!(
        total, agg.count,
        "per-planner series partition the aggregate"
    );

    // The ROADMAP planner.latency SLO is gradeable from this registry.
    let verdicts = fastt_telemetry::evaluate_slos(&fastt::default_slos(), col.metrics());
    assert!(verdicts
        .iter()
        .any(|v| v.slo == "planner.latency.p95" && v.grade != fastt_telemetry::SloGrade::NoData));
}

#[test]
fn dpos_place_events_record_considered_devices() {
    let (mut s, sink, _col) = session_with_sink(Model::LeNet, 32);
    s.pre_train().unwrap();
    let places = sink.events_of("dpos.place");
    // at least one decision considered multiple devices and scored each
    let multi = places
        .iter()
        .find(|e| {
            e.field("considered")
                .as_array()
                .is_some_and(|a| a.len() > 1)
        })
        .expect("some op must have had a real device choice");
    let considered = multi.field("considered").as_array().unwrap();
    for c in considered {
        assert!(c["device"].as_u64().is_some());
        assert!(c["eft"].as_f64().is_some());
    }
    // the chosen device is among the considered ones, with the best score
    let chosen = multi.field("device").as_u64().unwrap();
    let best = considered
        .iter()
        .min_by(|a, b| {
            a["eft"]
                .as_f64()
                .unwrap()
                .total_cmp(&b["eft"].as_f64().unwrap())
        })
        .unwrap();
    assert_eq!(best["device"].as_u64().unwrap(), chosen);
}

#[test]
fn hardware_drift_is_detected_and_recomputation_observable() {
    // Slow the hardware down mid-run: the periodic re-profiler must emit a
    // drift event and follow up with a candidate recomputation.
    let (mut s, sink, _col) = session_with_sink(Model::AlexNet, 16);
    s.pre_train().unwrap();
    s.train_normal(10, 3).unwrap();
    sink.clear();

    let mut slow_hw = HardwarePerf::new();
    slow_hw.launch_overhead *= 50.0;
    s.set_hardware(slow_hw);
    s.train_normal(10, 3).unwrap();

    let drifts = sink.events_of("session.drift");
    assert!(
        !drifts.is_empty(),
        "a 50x launch-overhead change must trip the drift detector"
    );
    let d = &drifts[0];
    let drift = d.num("drift").unwrap();
    let eps = d.num("eps").unwrap();
    assert!(
        drift > eps,
        "reported drift {drift} must exceed the threshold {eps}"
    );
    // drift triggers a strategy recomputation, visible as a fresh candidate
    let candidates = sink.events_of("session.candidate");
    assert!(
        !candidates.is_empty(),
        "drift must be followed by a recomputed candidate"
    );
    assert!(candidates
        .iter()
        .any(|e| e.str_field("stage") == Some("normal")));
    // and the drift event precedes the candidate it caused
    assert!(drifts[0].seq < candidates[0].seq);
}
