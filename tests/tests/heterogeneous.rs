//! Heterogeneous-cluster tests: the cost models key by (op, device), so
//! FastT handles clusters whose GPUs differ in speed — the scheduling
//! problem the paper notes is NP-complete even with *unit* times, and
//! strictly harder with "heterogeneous operation execution time" (Sec. 3).

use fastt::{dpos, SessionConfig, TrainingSession};
use fastt_cluster::{Device, DeviceId, Link, Topology, TopologyBuilder};
use fastt_cost::CostModels;
use fastt_graph::{Graph, OpKind, Operation};
use fastt_models::Model;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

/// One fast GPU and one 4x-slower GPU on a single server.
fn lopsided() -> Topology {
    let mut b = TopologyBuilder::new();
    b.add_device(Device::v100("fast"), 0);
    b.add_device(Device::v100("slow").with_peak_flops(15.7e12 / 4.0), 0);
    b.add_device(Device::host("cpu"), 0);
    b.connect_intra_server(Link::nvlink());
    b.connect_host_pcie(Link::pcie());
    b.build()
}

#[test]
fn dpos_prefers_the_fast_device_for_heavy_ops() {
    let topo = lopsided();
    let hw = HardwarePerf::new();

    // one heavy op, profiled on both GPUs
    let mut g = Graph::new();
    let a = g
        .add_op(Operation::new("heavy", OpKind::MatMul, [64]).with_flops(1 << 36))
        .unwrap();
    let mut cost = CostModels::new();
    for d in topo.gpu_ids() {
        let t = hw.exec_time(&g, a, topo.device(d));
        cost.comp.observe("heavy", d, t);
    }
    let s = dpos(&g, &topo, &cost, &hw);
    assert_eq!(
        s.placement.device_of(a),
        DeviceId(0),
        "heavy op on the fast GPU"
    );
}

#[test]
fn profiled_times_differ_per_device() {
    let topo = lopsided();
    let hw = HardwarePerf::new();
    let g = Model::LeNet.training_graph(16);
    let mut cost = CostModels::new();
    for d in topo.gpu_ids() {
        let p = Placement::uniform(g.op_count(), d);
        let tr = simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &SimConfig::default()).unwrap();
        cost.update_from_trace(&g, &tr);
    }
    // a compute-bound op must be measurably slower on the slow GPU
    let conv = "conv1";
    let fast = cost.comp.get(conv, DeviceId(0)).unwrap();
    let slow = cost.comp.get(conv, DeviceId(1)).unwrap();
    assert!(slow > fast * 1.5, "slow {slow} vs fast {fast}");
}

#[test]
fn session_on_lopsided_cluster_leans_on_the_fast_gpu() {
    let topo = lopsided();
    let g = Model::AlexNet.training_graph(32);
    let mut s = TrainingSession::new(
        &g,
        topo.clone(),
        HardwarePerf::new(),
        SessionConfig {
            profile_iters: 2,
            max_rounds: 4,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let report = s.pre_train().unwrap();
    assert!(report.final_iter_time.is_finite());
    // the final plan must execute and its busy time should favor the fast GPU
    let tr = s
        .current_plan()
        .simulate(&topo, &HardwarePerf::new(), &SimConfig::default())
        .unwrap();
    assert!(
        tr.device_busy[0] >= tr.device_busy[1] * 0.5,
        "fast GPU suspiciously idle: {:?}",
        tr.device_busy
    );
}
