//! End-to-end integration tests: the full FastT workflow over every
//! benchmark model on small simulated clusters.

use fastt::{data_parallel_plan, SessionConfig, TrainingSession};
use fastt_bench_support::small_batch;
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::replicate;
use fastt_models::Model;
use fastt_sim::{HardwarePerf, SimConfig};

/// Small batches per model so the suite stays fast.
mod fastt_bench_support {
    use fastt_models::Model;

    pub fn small_batch(m: Model) -> u64 {
        match m {
            Model::Transformer => 128,
            Model::BertLarge => 4,
            Model::ResNet200 => 4,
            _ => 8,
        }
    }
}

fn quick() -> SessionConfig {
    SessionConfig {
        profile_iters: 2,
        max_rounds: 3,
        ..SessionConfig::default()
    }
}

#[test]
fn every_model_completes_a_session_on_two_gpus() {
    for model in Model::all() {
        let graph = model.training_graph(small_batch(model));
        let topo = Topology::single_server(2);
        let mut session = TrainingSession::new(&graph, topo.clone(), HardwarePerf::new(), quick())
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        let report = session
            .pre_train()
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert!(
            report.final_iter_time.is_finite() && report.final_iter_time > 0.0,
            "{model}: bad iter time {}",
            report.final_iter_time
        );
        // the activated plan must be a valid deployment
        let plan = session.current_plan();
        plan.placement
            .validate(&plan.graph, &topo)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        // and actually executable
        plan.simulate(&topo, &HardwarePerf::new(), &SimConfig::default())
            .unwrap_or_else(|e| panic!("{model}: {e}"));
    }
}

#[test]
fn fastt_never_ends_worse_than_data_parallel() {
    // Rollback protection (Sec. 4): the measured per-iteration time after
    // pre-training can never materially exceed the DP start it began from.
    for model in [Model::LeNet, Model::AlexNet, Model::Rnnlm] {
        let batch = small_batch(model);
        let graph = model.training_graph(batch);
        let topo = Topology::single_server(2);
        let rep = replicate(&graph, 2).unwrap();
        let dp = data_parallel_plan(&rep, &topo);
        let dp_time = dp
            .simulate(&topo, &HardwarePerf::new(), &SimConfig::default())
            .unwrap()
            .makespan;

        let mut session = TrainingSession::new(&graph, topo, HardwarePerf::new(), quick()).unwrap();
        let report = session.pre_train().unwrap();
        assert!(
            report.final_iter_time <= dp_time * 1.10,
            "{model}: FastT {} vs DP {dp_time}",
            report.final_iter_time
        );
    }
}

#[test]
fn session_is_deterministic_for_a_seed() {
    let model = Model::AlexNet;
    let graph = model.training_graph(16);
    let run = || {
        let topo = Topology::single_server(2);
        let mut s = TrainingSession::new(&graph, topo, HardwarePerf::new(), quick()).unwrap();
        s.pre_train().unwrap().final_iter_time
    };
    assert_eq!(run(), run());
}

#[test]
fn order_enforcement_never_hurts_at_session_level() {
    // Sessions with ordering enabled must end at least as fast as sessions
    // without it (both protected by rollback).
    for model in [Model::Vgg19, Model::AlexNet] {
        let graph = model.training_graph(8);
        let topo = Topology::single_server(2);
        let with = {
            let mut s = TrainingSession::new(
                &graph,
                topo.clone(),
                HardwarePerf::new(),
                SessionConfig {
                    enable_order: true,
                    ..quick()
                },
            )
            .unwrap();
            s.pre_train().unwrap().final_iter_time
        };
        let without = {
            let mut s = TrainingSession::new(
                &graph,
                topo.clone(),
                HardwarePerf::new(),
                SessionConfig {
                    enable_order: false,
                    ..quick()
                },
            )
            .unwrap();
            s.pre_train().unwrap().final_iter_time
        };
        assert!(
            with <= without * 1.05,
            "{model}: with order {with} vs without {without}"
        );
    }
}

#[test]
fn multi_server_sessions_work() {
    let graph = Model::AlexNet.training_graph(16);
    let topo = Topology::multi_server(2, 2);
    let mut s = TrainingSession::new(&graph, topo.clone(), HardwarePerf::new(), quick()).unwrap();
    let report = s.pre_train().unwrap();
    assert!(report.final_iter_time.is_finite());
    // the DP base graph must contain the hierarchical helpers
    assert!(s
        .current_plan()
        .graph
        .iter_ops()
        .any(|(_, o)| o.name.starts_with("srv1/")));
}

#[test]
fn too_large_model_reports_no_feasible_start() {
    // A model that cannot fit even under model parallelism must produce the
    // structured NoFeasibleStart error, not a panic.
    let graph = Model::BertLarge.training_graph(128);
    let topo = Topology::single_server(1);
    let cfg = SessionConfig {
        dp_ps: Some(DeviceId(0)),
        ..quick()
    };
    match TrainingSession::new(&graph, topo, HardwarePerf::new(), cfg) {
        Err(fastt::FastTError::NoFeasibleStart { dp, mp }) => {
            assert!(dp.is_oom());
            assert!(mp.is_oom());
        }
        other => panic!("expected NoFeasibleStart, got {:?}", other.is_ok()),
    }
}
