//! Integration test of the cycle-breaking extension: a dynamic-RNN-style
//! cyclic graph is unrolled to a DAG and flows through the complete FastT
//! pipeline (autodiff → session → deployment).

use fastt::{SessionConfig, TrainingSession};
use fastt_cluster::Topology;
use fastt_graph::{break_cycles, build_training_graph, Graph, OpKind, Operation};
use fastt_sim::HardwarePerf;

/// A two-layer recurrent model written *with explicit cycles*, the way a
/// dynamic RNN appears before unrolling.
fn cyclic_rnn(batch: u64, hidden: u64) -> Graph {
    let mut g = Graph::new();
    let x = g
        .add_op(Operation::new("x", OpKind::Input, [batch, hidden]))
        .unwrap();
    let mut prev = x;
    for l in 0..2 {
        let w = g
            .add_op(
                Operation::new(format!("w{l}"), OpKind::Variable, [2 * hidden, 4 * hidden])
                    .with_param_bytes(2 * hidden * 4 * hidden * 4),
            )
            .unwrap();
        let cell = g
            .add_op(
                Operation::new(format!("cell{l}"), OpKind::LstmCell, [batch, hidden])
                    .with_flops(2 * batch * 2 * hidden * 4 * hidden),
            )
            .unwrap();
        let state = g
            .add_op(Operation::new(
                format!("state{l}"),
                OpKind::Identity,
                [batch, hidden],
            ))
            .unwrap();
        g.connect(prev, cell).unwrap();
        g.connect(w, cell).unwrap();
        g.connect(cell, state).unwrap();
        g.connect(state, cell).unwrap(); // the recurrence
        prev = cell;
    }
    let loss = g.add_op(Operation::new("loss", OpKind::Loss, [])).unwrap();
    g.connect(prev, loss).unwrap();
    g
}

#[test]
fn cyclic_model_trains_after_unrolling() {
    let cyclic = cyclic_rnn(16, 128);
    assert!(cyclic.validate().is_err(), "the input really has cycles");

    let unrolled = break_cycles(&cyclic, 8).unwrap();
    let training = build_training_graph(&unrolled.graph).unwrap();

    let topo = Topology::single_server(2);
    let mut session = TrainingSession::new(
        &training,
        topo.clone(),
        HardwarePerf::new(),
        SessionConfig {
            profile_iters: 2,
            max_rounds: 3,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let report = session.pre_train().unwrap();
    assert!(report.final_iter_time.is_finite() && report.final_iter_time > 0.0);
    session
        .current_plan()
        .placement
        .validate(&session.current_plan().graph, &topo)
        .unwrap();
}

#[test]
fn more_unroll_iterations_mean_proportionally_more_work() {
    let cyclic = cyclic_rnn(8, 64);
    let short = break_cycles(&cyclic, 2).unwrap();
    let long = break_cycles(&cyclic, 8).unwrap();
    let f_short = short.graph.total_flops();
    let f_long = long.graph.total_flops();
    assert!(
        (f_long as f64 / f_short as f64 - 4.0).abs() < 0.2,
        "flops should scale ~4x: {f_short} -> {f_long}"
    );
}
