//! Cross-crate elastic-lifecycle tests: spot revocations with a notice
//! window must be drained proactively (no crash recovery, no retries),
//! departed devices must come back through explicit re-admission and
//! quarantine, and restored capacity must climb the promotion ladder —
//! adopting the enlarged plan only when its probed per-replica time beats
//! the incumbent's — all deterministically for a fixed seed.

use std::sync::Arc;

use fastt::{Plan, RecoveryEvent, SessionConfig, TrainingSession};
use fastt_cluster::{DeviceId, Topology};
use fastt_models::Model;
use fastt_sim::{
    Fault, FaultKind, FaultSchedule, HardwarePerf, LifecycleEvent, LifecycleKind, SimConfig,
};

const D1: DeviceId = DeviceId(1);

fn quick(faults: FaultSchedule) -> SessionConfig {
    SessionConfig {
        profile_iters: 2,
        max_rounds: 2,
        faults: Some(Arc::new(faults)),
        ..SessionConfig::default()
    }
}

/// Steps the session forward until it has executed `target` iterations.
fn run_to(s: &mut TrainingSession, target: u64) {
    while s.iterations_run() < target {
        s.train_normal(1, 1).unwrap();
    }
}

/// Data-parallel replica count encoded in a plan's graph (`repN/...` op
/// names); per-iteration work scales with it, so probed makespans are only
/// comparable per replica.
fn replicas(plan: &Plan) -> usize {
    plan.graph
        .op_ids()
        .filter_map(|id| {
            let name = &plan.graph.op_ref(id).name;
            let rest = name.strip_prefix("rep")?;
            rest[..rest.find('/')?].parse::<usize>().ok()
        })
        .max()
        .map(|n| n + 1)
        .unwrap_or(1)
}

/// The acceptance scenario: a 2-server cluster loses a GPU to a spot
/// revocation and recovers it through a `DeviceArrival`. The session must
/// drain proactively (zero crash recovery for the revoked device), walk
/// the device through quarantine, and *provably* promote — the
/// post-scale-up plan's probed per-replica time beats the degraded plan's
/// on the restored topology, and the plan actually uses the device again.
#[test]
fn spot_revocation_then_arrival_promotes_back_up() {
    let g = Model::LeNet.training_graph(32);
    let faults = FaultSchedule::none()
        .with_lifecycle(LifecycleEvent::at(
            LifecycleKind::SpotRevocation {
                device: D1,
                notice_iters: 4,
            },
            30,
        ))
        .with_lifecycle(LifecycleEvent::at(
            LifecycleKind::DeviceArrival { device: D1 },
            44,
        ));
    let mut s = TrainingSession::new(
        &g,
        Topology::multi_server(2, 2),
        HardwarePerf::new(),
        quick(faults),
    )
    .unwrap();
    s.pre_train().unwrap();
    assert!(
        s.iterations_run() < 30,
        "pre-training must end before the scripted revocation"
    );

    // Phase 1: past the drain deadline, short of the arrival.
    run_to(&mut s, 40);
    assert!(s.topology().is_failed(D1), "revoked device must be drained");
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::RevocationNotice { device: D1, .. })));
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Drained { device: D1, .. })));
    let degraded = s.current_plan().clone();
    assert!(
        !degraded.placement.devices_used().contains(&D1),
        "the degraded plan must not use the drained device"
    );

    // Phase 2: arrival, quarantine, restore, promotion.
    run_to(&mut s, 60);
    assert!(!s.topology().is_failed(D1), "device must be restored");
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Readmitted { device: D1, .. })));
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Restored { device: D1, .. })));
    assert!(
        s.recovery_log()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Promoted { survivors: 4, .. })),
        "restored capacity must promote over the full survivor set: {:?}",
        s.recovery_log()
    );
    let promoted = s.current_plan();
    assert!(
        promoted.placement.devices_used().contains(&D1),
        "the promoted plan must use the restored device"
    );

    // Provably better: probe both plans over the restored topology and
    // compare per-replica (a 4-replica plan does more work per iteration
    // than a 3-replica one, so raw makespans are not comparable).
    let probe = SimConfig::default();
    let hw = HardwarePerf::new();
    let d = degraded
        .simulate(s.topology(), &hw, &probe)
        .unwrap()
        .makespan
        / replicas(&degraded) as f64;
    let p = promoted
        .simulate(s.topology(), &hw, &probe)
        .unwrap()
        .makespan
        / replicas(promoted) as f64;
    assert!(
        p < d,
        "promoted per-replica time {p} must beat degraded {d}"
    );

    // The proactive drain means the revoked device never took the crash
    // path: no retries, no blacklisting-by-failure.
    assert!(!s.recovery_log().iter().any(|e| matches!(
        e,
        RecoveryEvent::Retry { device: D1, .. } | RecoveryEvent::DeviceFailed { device: D1, .. }
    )));
}

/// A notice window at least as long as the drain cost must re-plan
/// proactively: the revoked device sees **zero** crash-recovery retries
/// and is never blacklisted reactively — the drain beat the deadline.
#[test]
fn revocation_notice_drains_proactively_without_retries() {
    let g = Model::LeNet.training_graph(32);
    let faults = FaultSchedule::none().with_lifecycle(LifecycleEvent::at(
        LifecycleKind::SpotRevocation {
            device: D1,
            notice_iters: 3,
        },
        10,
    ));
    let mut s = TrainingSession::new(
        &g,
        Topology::single_server(4),
        HardwarePerf::new(),
        quick(faults),
    )
    .unwrap();
    s.pre_train().unwrap();
    run_to(&mut s, 30); // far past the deadline at iteration 13
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Drained { device: D1, .. })));
    assert_eq!(
        s.recovery_log()
            .iter()
            .filter(|e| matches!(
                e,
                RecoveryEvent::Retry { device: D1, .. }
                    | RecoveryEvent::DeviceFailed { device: D1, .. }
            ))
            .count(),
        0,
        "a drained device must never enter crash recovery: {:?}",
        s.recovery_log()
    );
    assert!(s.topology().gpu_count() >= 3);
}

/// Runs a full churn session and returns its recovery log, debug-formatted.
fn churn_log(seed: u64, with_partition: bool) -> String {
    let g = Model::LeNet.training_graph(32);
    let mut faults = FaultSchedule::seeded_churn(seed, 4, 2, 60);
    if with_partition {
        faults = faults.with(Fault::windowed(
            FaultKind::HostPartition { server: 1 },
            52,
            54,
        ));
    }
    let mut s = TrainingSession::new(
        &g,
        Topology::multi_server(2, 2),
        HardwarePerf::new(),
        quick(faults),
    )
    .unwrap();
    s.pre_train().unwrap();
    run_to(&mut s, 60);
    format!("{:?}", s.recovery_log())
}

/// Same seed ⇒ byte-identical recovery logs, for a pure churn schedule and
/// for churn mixed with a host partition (arrival + revocation + partition
/// interleaved). The oscillating schedule must actually exercise the
/// elastic path, not vacuously pass on an empty log.
#[test]
fn same_seed_churn_recovery_logs_are_byte_identical() {
    for with_partition in [false, true] {
        let a = churn_log(21, with_partition);
        let b = churn_log(21, with_partition);
        assert_eq!(
            a, b,
            "same-seed recovery logs must be byte-identical (partition={with_partition})"
        );
        assert!(
            a.contains("RevocationNotice"),
            "churn must revoke at least one device (partition={with_partition}): {a}"
        );
        assert!(
            a.contains("Readmitted"),
            "churn must re-admit at least one device (partition={with_partition}): {a}"
        );
    }
}

/// Different seeds must be allowed to produce different trajectories (the
/// churn is seeded, not constant), while each remains self-consistent.
#[test]
fn churn_trajectories_are_seeded() {
    let a = churn_log(3, false);
    let b = churn_log(4, false);
    // Both ran the elastic path; the schedules (and so the logs) are
    // seed-dependent. Equality would mean the seed is being ignored.
    assert_ne!(a, b, "different seeds must yield different churn logs");
}
