//! Integration tests of the adaptive cost-model loop: the models must learn
//! the simulator's hidden ground truth through profiling alone, across
//! rewrites and placements.

use fastt_cluster::{DeviceId, Topology};
use fastt_cost::{canonical_name, CostModels};
use fastt_graph::replicate;
use fastt_models::Model;
use fastt_sim::{simulate, ExecPolicy, HardwarePerf, Placement, SimConfig};

#[test]
fn dp_profiling_covers_every_device_through_replicas() {
    // The paper's bootstrap trick: profiling the DP start teaches the cost
    // model every op's time on every GPU, because replica k runs on GPU k
    // and replicas share canonical cost keys.
    let graph = Model::AlexNet.training_graph(8);
    let topo = Topology::single_server(4);
    let rep = replicate(&graph, 4).unwrap();
    let plan = fastt::data_parallel_plan(&rep, &topo);
    let trace = plan
        .simulate(&topo, &HardwarePerf::new(), &SimConfig::default())
        .unwrap();
    let mut cost = CostModels::new();
    cost.update_from_trace(&rep.graph, &trace);

    for (_, op) in graph.iter_ops() {
        if matches!(
            op.kind,
            fastt_graph::OpKind::Variable | fastt_graph::OpKind::ApplyGradient
        ) {
            continue; // shared PS state lives once, on the host
        }
        for d in topo.gpu_ids() {
            assert!(
                cost.comp.get(&op.name, d).is_some(),
                "`{}` unprofiled on {d}",
                op.name
            );
        }
    }
}

#[test]
fn learned_times_match_ground_truth_per_device() {
    let graph = Model::LeNet.training_graph(16);
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();
    let mut cost = CostModels::new();
    for d in topo.gpu_ids() {
        let p = Placement::uniform(graph.op_count(), d);
        let tr = simulate(
            &graph,
            &topo,
            &p,
            &hw,
            ExecPolicy::Fifo,
            &SimConfig::default(),
        )
        .unwrap();
        cost.update_from_trace(&graph, &tr);
    }
    for (oid, op) in graph.iter_ops() {
        for d in topo.gpu_ids() {
            let truth = hw.exec_time(&graph, oid, topo.device(d));
            let learned = cost.comp.get(&op.name, d).expect("profiled");
            assert!(
                (learned - truth).abs() / truth < 1e-9,
                "`{}` on {d}: learned {learned}, truth {truth}",
                op.name
            );
        }
    }
}

#[test]
fn comm_model_recovers_link_parameters() {
    // Profile transfers of different sizes across one NVLink pair and check
    // the regression recovers the link's latency and bandwidth.
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();
    let mut cost = CostModels::new();
    for (i, kb) in [64u64, 256, 1024, 4096, 16384].iter().enumerate() {
        let mut g = fastt_graph::Graph::new();
        let a = g
            .add_op(fastt_graph::Operation::new(
                "a",
                fastt_graph::OpKind::Input,
                [*kb * 256],
            ))
            .unwrap();
        let b = g
            .add_op(fastt_graph::Operation::new(
                "b",
                fastt_graph::OpKind::Relu,
                [*kb * 256],
            ))
            .unwrap();
        g.connect(a, b).unwrap();
        let mut p = Placement::uniform(2, DeviceId(0));
        p.set(b, DeviceId(1));
        let cfg = SimConfig {
            iteration: i as u64,
            ..SimConfig::default()
        };
        let tr = simulate(&g, &topo, &p, &hw, ExecPolicy::Fifo, &cfg).unwrap();
        cost.comm.update_from_trace(&tr);
    }
    let link = topo.link(DeviceId(0), DeviceId(1)).unwrap();
    let fit = cost.comm.fit_for(DeviceId(0), DeviceId(1)).expect("fitted");
    assert!(
        (fit.slope - 1.0 / link.bandwidth).abs() / (1.0 / link.bandwidth) < 0.05,
        "slope {} vs 1/bw {}",
        fit.slope,
        1.0 / link.bandwidth
    );
    assert!(
        (fit.intercept - link.latency).abs() < link.latency * 2.0,
        "intercept {} vs latency {}",
        fit.intercept,
        link.latency
    );
}

#[test]
fn canonicalization_shares_stats_across_replicas_and_parts() {
    assert_eq!(canonical_name("rep5/conv1_2"), "conv1_2");
    assert_eq!(canonical_name("rep5/conv1_2.part3"), "conv1_2.part#");
    let mut cost = CostModels::new();
    cost.comp.observe("rep0/fc6", DeviceId(0), 0.5);
    assert_eq!(cost.comp.get("rep3/fc6", DeviceId(0)), Some(0.5));
}

#[test]
fn stability_detection_terminates_bootstrap() {
    // Repeated profiling of the same plan with small jitter must converge
    // below the default stability threshold.
    let graph = Model::LeNet.training_graph(16);
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();
    let rep = replicate(&graph, 2).unwrap();
    let plan = fastt::data_parallel_plan(&rep, &topo);
    let mut cost = CostModels::new();
    let mut stable_at = None;
    for round in 0..10u64 {
        cost.snapshot();
        for k in 0..3 {
            let cfg = SimConfig {
                jitter_pct: 0.02,
                iteration: round * 3 + k,
                ..SimConfig::default()
            };
            let tr = plan.simulate(&topo, &hw, &cfg).unwrap();
            cost.update_from_trace(&rep.graph, &tr);
        }
        if cost.is_stable(0.05) {
            stable_at = Some(round);
            break;
        }
    }
    let round = stable_at.expect("cost models should stabilize within 10 rounds");
    assert!(round >= 1, "cannot be stable before any re-profiling");
}
