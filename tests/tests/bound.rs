//! Empirical check of the paper's Theorem 1: the end-to-end processing time
//! of a DPOS schedule satisfies `ω_DPOS ≤ 2·ω_opt + C_max`, where `ω_opt`
//! is the optimal makespan in an ideal system without transmission time and
//! `C_max` is the maximal total transmission time along any chain.
//!
//! `ω_opt` is unknown in general, but two lower bounds hold:
//! `ω_opt ≥ (Σ_i w_i) / |D|` (work bound) and `ω_opt ≥ max chain of w`
//! (critical-path bound without comm). We verify the theorem against
//! `max(work bound, chain bound)` — if DPOS violated the theorem with the
//! true `ω_opt`, it would also violate it with any valid lower bound
//! replaced appropriately... strictly: `ω_DPOS ≤ 2·ω_opt + C_max` implies
//! nothing about lower bounds, so we check the *sufficient* inequality
//! `ω_DPOS ≤ 2·LB_max + C_max` may fail even when the theorem holds; we
//! therefore assert the weaker, necessary direction — DPOS's estimated
//! makespan never exceeds `2·UB_opt + C_max` where `UB_opt` is the makespan
//! of the best schedule we can construct (DPOS itself is such an upper
//! bound when communication is free).

use fastt::{dpos, upward_ranks};
use fastt_cluster::Topology;
use fastt_cost::CostModels;
use fastt_graph::{Graph, OpId, OpKind, Operation};
use fastt_sim::HardwarePerf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random layered DAG with profiled costs on every device.
fn random_dag(seed: u64, layers: usize, width: usize, topo: &Topology) -> (Graph, CostModels) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let mut cost = CostModels::new();
    let mut prev_layer: Vec<OpId> = Vec::new();
    for l in 0..layers {
        let mut layer = Vec::new();
        for i in 0..width {
            let o = g
                .add_op(Operation::new(
                    format!("l{l}_o{i}"),
                    OpKind::MatMul,
                    [64u64],
                ))
                .unwrap();
            let w = rng.gen_range(0.01..0.2);
            for d in topo.gpu_ids() {
                cost.comp.observe(&format!("l{l}_o{i}"), d, w);
            }
            // connect to 1-2 random predecessors
            if !prev_layer.is_empty() {
                let k = rng.gen_range(1..=2usize.min(prev_layer.len()));
                for _ in 0..k {
                    let p = prev_layer[rng.gen_range(0..prev_layer.len())];
                    // duplicate edges are fine for the schedule
                    g.connect(p, o).unwrap();
                }
            }
            layer.push(o);
        }
        prev_layer = layer;
    }
    for s in topo.gpu_ids() {
        for d in topo.gpu_ids() {
            if s != d {
                cost.comm.observe(s, d, 256, 0.002);
            }
        }
    }
    cost.comm.refit();
    (g, cost)
}

/// Maximal total transmission time along any chain (DP over the DAG).
fn c_max(g: &Graph, cost: &CostModels) -> f64 {
    let topo_order = g.topo_order().unwrap();
    let mut best = vec![0.0f64; g.op_count()];
    let mut global: f64 = 0.0;
    for &o in topo_order.iter().rev() {
        for e in g.out_edges(o) {
            let c = cost.comm.max_comm(e.bytes);
            let cand = c + best[e.dst.index()];
            if cand > best[o.index()] {
                best[o.index()] = cand;
            }
        }
        global = global.max(best[o.index()]);
    }
    global
}

/// Lower bounds on ω_opt: total work / devices, and the longest
/// computation-only chain.
fn opt_lower_bound(g: &Graph, cost: &CostModels, topo: &Topology) -> f64 {
    let n_dev = topo.gpu_count() as f64;
    let w = |o: OpId| cost.comp.max_time(&g.op_ref(o).name).unwrap_or(0.0);
    let total: f64 = g.op_ids().map(w).sum();
    let work_bound = total / n_dev;

    let topo_order = g.topo_order().unwrap();
    let mut chain = vec![0.0f64; g.op_count()];
    let mut chain_bound: f64 = 0.0;
    for &o in topo_order.iter().rev() {
        let tail = g.succs(o).map(|s| chain[s.index()]).fold(0.0f64, f64::max);
        chain[o.index()] = w(o) + tail;
        chain_bound = chain_bound.max(chain[o.index()]);
    }
    work_bound.max(chain_bound)
}

#[test]
fn dpos_respects_theorem_one_shape_on_random_dags() {
    // Theorem 1 with ω_opt replaced by its lower bound is *stronger* than
    // the theorem, so violations of the original can never hide behind it;
    // empirically DPOS satisfies even the stronger form on these DAGs,
    // giving good evidence for the implementation's fidelity.
    let topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    for seed in 0..20u64 {
        let layers = 3 + (seed % 5) as usize;
        let width = 2 + (seed % 4) as usize;
        let (g, cost) = random_dag(seed, layers, width, &topo);
        let s = dpos(&g, &topo, &cost, &hw);
        let lb = opt_lower_bound(&g, &cost, &topo);
        let cm = c_max(&g, &cost);
        assert!(
            s.est_finish <= 2.0 * lb + cm + 1e-9,
            "seed {seed}: ω_DPOS = {} > 2·{lb} + {cm}",
            s.est_finish
        );
    }
}

#[test]
fn dpos_is_optimal_when_all_devices_stay_busy() {
    // The paper notes DPOS is optimal when no device idles (B = ∅): with
    // |D| independent equal ops, the schedule must hit exactly w.
    let topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    let mut g = Graph::new();
    let mut cost = CostModels::new();
    for i in 0..4 {
        g.add_op(Operation::new(format!("o{i}"), OpKind::MatMul, [4u64]))
            .unwrap();
        for d in topo.gpu_ids() {
            cost.comp.observe(&format!("o{i}"), d, 1.0);
        }
    }
    let s = dpos(&g, &topo, &cost, &hw);
    assert!((s.est_finish - 1.0).abs() < 1e-9, "est = {}", s.est_finish);
    assert_eq!(s.placement.devices_used().len(), 4);
}

#[test]
fn rank_is_monotone_along_edges() {
    // rank_u(pred) ≥ rank_u(succ) + w(pred) by construction.
    let topo = Topology::single_server(2);
    let (g, cost) = random_dag(7, 5, 3, &topo);
    let ranks = upward_ranks(&g, &cost);
    for e in g.iter_edges() {
        let w_src = cost.comp.max_time(&g.op_ref(e.src).name).unwrap_or(0.0);
        assert!(
            ranks[e.src.index()] + 1e-12 >= ranks[e.dst.index()] + w_src,
            "rank monotonicity violated on {} -> {}",
            g.op_ref(e.src).name,
            g.op_ref(e.dst).name
        );
    }
}
