//! Cross-crate network-fault tests: scripted link flaps, host partitions,
//! collective stragglers, and NIC degradation in the simulator must drive
//! the session's link-health detection → blacklist → re-route → degradation
//! ladder, deterministically and without deadlocks.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fastt::{data_parallel_plan, FastTError, RecoveryEvent, SessionConfig, TrainingSession};
use fastt_cluster::{DeviceId, Topology};
use fastt_graph::{replicate_grouped, ReplicationMode};
use fastt_models::Model;
use fastt_sim::{Fault, FaultKind, FaultSchedule, HardwarePerf, SimConfig, SimError};

const D0: DeviceId = DeviceId(0);
const D1: DeviceId = DeviceId(1);

fn quick(faults: FaultSchedule) -> SessionConfig {
    SessionConfig {
        profile_iters: 2,
        max_rounds: 2,
        faults: Some(Arc::new(faults)),
        ..SessionConfig::default()
    }
}

/// The acceptance scenario: a host partition mid-training on a 2×2 cluster.
/// The session must detect the partition timeout, blacklist the unreachable
/// server's devices, step down the degradation ladder, and keep training on
/// the surviving server.
#[test]
fn host_partition_mid_training_degrades_and_completes() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::multi_server(2, 2);
    let faults =
        FaultSchedule::none().with(Fault::from(FaultKind::HostPartition { server: 1 }, 10));
    let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
    s.pre_train().unwrap();
    let avg = s.train_normal(20, 5).unwrap();
    assert!(avg.is_finite() && avg > 0.0);

    // the partition was detected and every device of server 1 blacklisted
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Partitioned { server: 1, .. })));
    let topo_now = s.topology();
    assert_eq!(topo_now.gpu_count(), 2, "only server 0's GPUs survive");
    for d in topo_now.device_ids() {
        assert_eq!(
            topo_now.is_failed(d),
            topo_now.server_of(d) == 1,
            "exactly server 1's devices must be blacklisted (device {d:?})"
        );
    }
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Replanned { survivors: 2, .. })));
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Recovered { .. })));

    // the active plan never touches the partitioned server
    let plan = s.current_plan();
    plan.placement.validate(&plan.graph, topo_now).unwrap();
    for d in plan.placement.devices_used() {
        assert_eq!(topo_now.server_of(d), 0);
    }
}

/// Same-seed determinism of the acceptance scenario: the whole recovery log
/// — every partition, blacklist, re-plan, and degradation decision — must
/// replay byte-identically across two runs.
#[test]
fn partition_recovery_log_is_byte_identical_across_same_seed_runs() {
    let run = || {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::multi_server(2, 2);
        let faults = FaultSchedule::seeded_network(21, 4, 2, 40);
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
        s.pre_train().unwrap();
        s.train_normal(25, 5).unwrap();
        (
            format!("{:?}", s.recovery_log()),
            s.measured_iter_time(),
            s.iterations_run(),
            s.topology().failed_devices(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "recovery logs must replay byte-identically");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    assert!(
        !a.0.is_empty() && a.0 != "[]",
        "the seeded network-chaos scenario should exercise recovery"
    );
}

/// A ring collective whose participant sits behind a partition must abort
/// with a typed error within the transfer deadline — not hang waiting for a
/// rank that will never answer.
#[test]
fn ring_collective_with_partitioned_participant_aborts_typed() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::multi_server(2, 2);
    let groups: Vec<u16> = topo.gpu_ids().map(|d| topo.server_of(d)).collect();
    let rep = replicate_grouped(&g, &groups, ReplicationMode::AllReduce).unwrap();
    let plan = data_parallel_plan(&rep, &topo);
    let cfg = SimConfig {
        faults: Some(Arc::new(
            FaultSchedule::none().with(Fault::from(FaultKind::HostPartition { server: 1 }, 0)),
        )),
        ..SimConfig::default()
    };
    let t0 = Instant::now();
    let err = plan
        .simulate(&topo, &HardwarePerf::new(), &cfg)
        .expect_err("a ring spanning a partitioned server cannot complete");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the abort must be prompt, not a hang"
    );
    assert!(
        matches!(err, SimError::PartitionTimeout { server: 1, .. }),
        "expected PartitionTimeout, got {err}"
    );
}

/// Satellite: overlapping device and link faults. A GPU crash and a later
/// permanent link flap must both be absorbed, and the recovery log must
/// record them in fault order — deterministically across same-seed runs.
#[test]
fn overlapping_device_and_link_faults_recover_in_deterministic_order() {
    let run = || {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::multi_server(2, 2);
        let h0 = topo.host_of(0).unwrap();
        let h1 = topo.host_of(1).unwrap();
        let faults = FaultSchedule::none()
            .with(Fault::from(FaultKind::Crash { device: D1 }, 8))
            .with(Fault::from(
                FaultKind::LinkFlap {
                    src: h0,
                    dst: h1,
                    prob: 1.0,
                },
                16,
            ));
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
        s.pre_train().unwrap();
        s.train_normal(25, 5).unwrap();
        (s.recovery_log().to_vec(), s.topology().failed_links())
    };
    let (log, failed_links) = run();
    let (log2, failed_links2) = run();
    assert_eq!(log, log2, "recovery logs must replay identically");
    assert_eq!(failed_links, failed_links2);

    let crash_at = log
        .iter()
        .position(|e| matches!(e, RecoveryEvent::DeviceFailed { device, .. } if *device == D1))
        .expect("the crashed GPU must be blacklisted");
    let link_at = log
        .iter()
        .position(|e| matches!(e, RecoveryEvent::LinkFailed { .. }))
        .expect("the permanently flapping link must be blacklisted");
    assert!(
        crash_at < link_at,
        "the iteration-8 crash must be logged before the iteration-16 link death"
    );
    assert!(log
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Recovered { .. })));
    assert!(
        !failed_links.is_empty(),
        "the dead hop must be recorded in the topology's link blacklist"
    );
}

/// NIC degradation stretches inter-server hop times; the session's
/// link-health detector must flag the slow hops, re-seed pessimistic cost
/// priors for exactly those pairs, and keep training.
#[test]
fn nic_degradation_flags_links_and_reseeds_pessimistic_priors() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::multi_server(2, 2);
    let faults = FaultSchedule::none().with(Fault::from(
        FaultKind::NicDegrade {
            server: 1,
            factor: 8.0,
        },
        2,
    ));
    let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
    s.pre_train().unwrap();
    let avg = s.train_normal(10, 5).unwrap();
    assert!(avg.is_finite() && avg > 0.0);

    let degraded: Vec<_> = s
        .recovery_log()
        .iter()
        .filter_map(|e| match e {
            RecoveryEvent::LinkDegraded { src, dst, slowdown } => Some((*src, *dst, *slowdown)),
            _ => None,
        })
        .collect();
    assert!(
        !degraded.is_empty(),
        "an 8x NIC slowdown must trip the link-health detector"
    );
    for (src, dst, slowdown) in &degraded {
        assert!(
            *slowdown >= SessionConfig::default().degraded_slowdown,
            "flagged hop {src:?}->{dst:?} at only {slowdown}x"
        );
        // every flagged hop crosses into the degraded server
        let topo_now = s.topology();
        assert!(
            topo_now.server_of(*src) == 1 || topo_now.server_of(*dst) == 1,
            "hop {src:?}->{dst:?} does not touch the degraded server"
        );
    }
    // no devices were blacklisted — degradation re-prices, it does not kill
    assert_eq!(s.topology().failed_devices(), vec![]);
}

/// Losing one server to a partition and then every surviving GPU to crashes
/// must end in the typed dead-end error, not a loop or panic.
#[test]
fn partition_then_crashes_exhaust_the_cluster_typed() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::multi_server(2, 2);
    let faults = FaultSchedule::none()
        .with(Fault::from(FaultKind::HostPartition { server: 1 }, 4))
        .with(Fault::from(FaultKind::Crash { device: D0 }, 8))
        .with(Fault::from(FaultKind::Crash { device: D1 }, 10));
    let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), quick(faults)).unwrap();
    let err = s.train_normal(30, 5).unwrap_err();
    assert!(
        matches!(err, FastTError::ClusterExhausted),
        "expected ClusterExhausted, got {err}"
    );
    assert!(s
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Partitioned { server: 1, .. })));
}
