//! Acceptance tests for the unified planner layer: portfolio concurrency
//! and deterministic arbitration, fingerprint-keyed plan caching (and its
//! invalidation on blacklists and cost-model refits), seeded search
//! determinism, and the traced no-split candidate path.

use fastt::planner::{Planner, PlannerKind, PlanningContext};
use fastt::search::{
    cem_search, gdp_place, mcmc_search, random_search, reinforce_search, CemPlanner, McmcPlanner,
    RandomPlanner,
};
use fastt::{
    bootstrap_cost_models, DposPlanner, FastTError, Plan, PlanCache, Portfolio, PortfolioInputs,
    SessionConfig, TrainingSession,
};
use fastt_cluster::{DeviceId, Topology};
use fastt_cost::CostModels;
use fastt_graph::Graph;
use fastt_models::Model;
use fastt_sim::{FaultSchedule, HardwarePerf, SimConfig};
use fastt_telemetry::{Collector, MemorySink};
use std::sync::{Arc, Mutex};

fn inputs<'a>(
    graph: &'a Graph,
    topo: &'a Topology,
    hw: &'a HardwarePerf,
    cost: &'a CostModels,
) -> PortfolioInputs<'a> {
    PortfolioInputs {
        graph,
        raw: None,
        current: None,
        topo,
        hw,
        cost,
        collector: None,
        enable_order: true,
        dp_ps: None,
        cache_salt: 0,
        probe: None,
    }
}

#[test]
fn cache_hits_on_unchanged_fingerprint_and_misses_on_blacklist_or_refit() {
    let graph = Model::LeNet.training_graph(32);
    let mut topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    // bootstrap seeds analytic priors without bumping the generation —
    // a fresh identical run must land on the same fingerprint
    let mut cost = bootstrap_cost_models(&graph, &topo, &hw);
    let portfolio = Portfolio::new().with(Box::new(DposPlanner));
    let cache = PlanCache::default();

    let first = portfolio.evaluate(&inputs(&graph, &topo, &hw, &cost), Some(&cache));
    assert!(!first.candidates[0].cached);
    assert_eq!(cache.misses(), 1);
    let first_plan = first.into_winning_plan().unwrap();

    // identical inputs: served from the cache, bit-identical plan
    let second = portfolio.evaluate(&inputs(&graph, &topo, &hw, &cost), Some(&cache));
    assert!(second.candidates[0].cached);
    assert_eq!(cache.hits(), 1);
    let second_plan = second.into_winning_plan().unwrap();
    assert_eq!(first_plan.placement, second_plan.placement);
    assert_eq!(first_plan.order, second_plan.order);

    // blacklisting a device changes the failed mask: miss
    topo.fail_device(DeviceId(3));
    let after_fail = portfolio.evaluate(&inputs(&graph, &topo, &hw, &cost), Some(&cache));
    assert!(
        !after_fail.candidates[0].cached,
        "a blacklisted device must invalidate the cached plan"
    );

    // a comm-model refit bumps the generation counter: miss again
    let gen_before = cost.generation();
    for s in topo.gpu_ids().collect::<Vec<_>>() {
        for d in topo.gpu_ids().collect::<Vec<_>>() {
            if s != d {
                cost.comm.observe(s, d, 1 << 20, 1e-4);
            }
        }
    }
    cost.comm.refit();
    assert!(cost.generation() > gen_before);
    let after_refit = portfolio.evaluate(&inputs(&graph, &topo, &hw, &cost), Some(&cache));
    assert!(
        !after_refit.candidates[0].cached,
        "a cost-model refit must invalidate the cached plan"
    );
}

/// A planner that records which OS thread ran it, then delegates to DPOS.
#[derive(Debug)]
struct ThreadProbe {
    ids: Arc<Mutex<Vec<std::thread::ThreadId>>>,
}

impl Planner for ThreadProbe {
    fn name(&self) -> &'static str {
        "thread_probe"
    }

    fn kind(&self) -> PlannerKind {
        PlannerKind::WhiteBox
    }

    fn cacheable(&self) -> bool {
        false
    }

    fn plan(&self, ctx: &mut PlanningContext<'_>) -> Result<Plan, FastTError> {
        self.ids.lock().unwrap().push(std::thread::current().id());
        DposPlanner.plan(ctx)
    }
}

#[test]
fn portfolio_evaluates_candidates_on_separate_threads() {
    let graph = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();
    let cost = bootstrap_cost_models(&graph, &topo, &hw);

    let ids = Arc::new(Mutex::new(Vec::new()));
    let mut portfolio = Portfolio::new();
    for _ in 0..3 {
        portfolio.push(Box::new(ThreadProbe { ids: ids.clone() }));
    }
    let outcome = portfolio.evaluate(&inputs(&graph, &topo, &hw, &cost), None);
    assert_eq!(outcome.candidates.len(), 3);
    assert!(outcome.candidates.iter().all(|c| c.plan.is_some()));

    let ids = ids.lock().unwrap();
    assert_eq!(ids.len(), 3);
    let main = std::thread::current().id();
    assert!(
        ids.iter().all(|&id| id != main),
        "planners must not run on the caller's thread"
    );
    let distinct: std::collections::HashSet<_> = ids.iter().collect();
    assert_eq!(distinct.len(), 3, "each planner gets its own thread");
}

#[test]
fn portfolio_arbitration_is_deterministic_under_fixed_seeds() {
    let graph = Model::LeNet.training_graph(16);
    let topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    let cost = bootstrap_cost_models(&graph, &topo, &hw);

    let portfolio = || {
        Portfolio::new()
            .with(Box::new(RandomPlanner { evals: 32, seed: 5 }))
            .with(Box::new(CemPlanner {
                rounds: 4,
                pop: 8,
                elite_frac: 0.25,
                seed: 13,
            }))
            .with(Box::new(McmcPlanner {
                evals: 60,
                temp: 0.05,
                seed: 17,
                start_from_current: false,
            }))
    };
    let a = portfolio().evaluate(&inputs(&graph, &topo, &hw, &cost), None);
    let b = portfolio().evaluate(&inputs(&graph, &topo, &hw, &cost), None);
    assert_eq!(a.winner, b.winner, "same seeds must elect the same winner");
    assert!(a.winner.is_some());
    for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
        assert_eq!(
            ca.plan.as_ref().unwrap().placement,
            cb.plan.as_ref().unwrap().placement,
            "{} must be deterministic",
            ca.planner
        );
        assert_eq!(ca.evals_used, cb.evals_used);
    }
}

#[test]
fn every_search_baseline_is_deterministic_for_the_same_seed() {
    let graph = Model::LeNet.training_graph(16);
    let topo = Topology::single_server(4);
    let hw = HardwarePerf::new();
    let cost = bootstrap_cost_models(&graph, &topo, &hw);

    let runs = |i: u32| {
        let _ = i;
        [
            random_search(&graph, &topo, &hw, 16, 3),
            mcmc_search(&graph, &topo, &hw, None, 40, 0.05, 9),
            cem_search(&graph, &topo, &hw, 3, 6, 0.3, 11),
            reinforce_search(&graph, &topo, &hw, 3, 4, 7),
            gdp_place(&graph, &topo, &cost, &hw),
        ]
    };
    for (a, b) in runs(0).iter().zip(runs(1).iter()) {
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.evals_used, b.evals_used);
        assert!(a.best_time == b.best_time || (a.best_time.is_nan() && b.best_time.is_nan()));
    }
}

#[test]
fn session_serves_repeated_candidates_from_the_plan_cache() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(2);
    let mut s =
        TrainingSession::new(&g, topo, HardwarePerf::new(), SessionConfig::default()).unwrap();
    s.profile(2).unwrap();
    let first = s.compute_candidate();
    let hits_before = s.plan_cache().hits();
    // no profiling in between: the fingerprint is unchanged
    let second = s.compute_candidate();
    assert_eq!(s.plan_cache().hits(), hits_before + 1);
    assert_eq!(first.placement, second.placement);
    // profiling bumps the cost generation: the next candidate recomputes
    s.profile(1).unwrap();
    let misses_before = s.plan_cache().misses();
    s.compute_candidate();
    assert_eq!(s.plan_cache().misses(), misses_before + 1);
}

#[test]
fn no_split_candidate_emits_dpos_trace_events() {
    let g = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(2);
    let mut s =
        TrainingSession::new(&g, topo, HardwarePerf::new(), SessionConfig::default()).unwrap();
    let sink = Arc::new(MemorySink::with_default_capacity());
    s.attach_collector(Arc::new(Collector::new().with_sink(sink.clone())));
    s.profile(1).unwrap();
    sink.clear();

    s.compute_candidate_no_split();
    assert!(
        !sink.events_of("dpos.place").is_empty(),
        "the no-split candidate must trace its placement decisions"
    );
    assert!(!sink.events_of("planner.candidate").is_empty());
}

#[test]
fn same_seed_sessions_choose_identical_plans_through_recovery() {
    // Extends the PR-2 determinism suite to the portfolio: two sessions
    // with the same seed, config, and fault schedule must not only take the
    // same recovery decisions but deploy bit-identical plans.
    let run = || {
        let g = Model::LeNet.training_graph(32);
        let topo = Topology::single_server(4);
        let cfg = SessionConfig {
            profile_iters: 2,
            max_rounds: 3,
            faults: Some(Arc::new(FaultSchedule::seeded(21, 4, 40, true))),
            ..SessionConfig::default()
        };
        let mut s = TrainingSession::new(&g, topo, HardwarePerf::new(), cfg).unwrap();
        s.pre_train().unwrap();
        s.train_normal(30, 5).unwrap();
        s
    };
    let a = run();
    let b = run();
    assert_eq!(a.recovery_log(), b.recovery_log());
    assert_eq!(a.current_plan().placement, b.current_plan().placement);
    assert_eq!(a.current_plan().order, b.current_plan().order);
    assert_eq!(
        a.plan_cache().hits() + a.plan_cache().misses(),
        b.plan_cache().hits() + b.plan_cache().misses(),
        "cache traffic itself must be deterministic"
    );
}

#[test]
fn cached_plans_are_probed_before_deployment() {
    // A cache-served plan must still be probed: stale plans that no longer
    // fit the cluster lose the arbitration instead of being deployed blind.
    let graph = Model::LeNet.training_graph(32);
    let topo = Topology::single_server(2);
    let hw = HardwarePerf::new();
    let cost = bootstrap_cost_models(&graph, &topo, &hw);
    let portfolio = Portfolio::new().with(Box::new(DposPlanner));
    let cache = PlanCache::default();

    let mut with_probe = inputs(&graph, &topo, &hw, &cost);
    with_probe.probe = Some(SimConfig::default());
    let first = portfolio.evaluate(&with_probe, Some(&cache));
    assert!(first.candidates[0].simulated.is_some());
    let second = portfolio.evaluate(&with_probe, Some(&cache));
    assert!(second.candidates[0].cached);
    assert!(
        second.candidates[0].simulated.is_some(),
        "cached candidates are re-probed under the current conditions"
    );
}
