//! Multi-tenant fleet integration: the ClusterManager scheduling a seeded
//! arrival workload over one shared topology, allocation-scoped sessions
//! racing on the shared plan cache, and preemption leaving every survivor
//! with a valid plan on disjoint devices.

use fastt::fleet::{seeded_workload, ClusterManager, FleetEvent, JobSpec};
use fastt::{SessionConfig, TrainingSession};
use fastt_cluster::{Allocation, AllocationId, DeviceId, Topology};
use fastt_models::Model;
use fastt_sim::HardwarePerf;
use std::collections::BTreeSet;
use std::sync::Arc;

fn templates() -> Vec<(String, fastt_graph::Graph)> {
    vec![
        ("lenet32".to_string(), Model::LeNet.training_graph(32)),
        ("lenet16".to_string(), Model::LeNet.training_graph(16)),
    ]
}

fn run_fleet(seed: u64) -> fastt::FleetReport {
    let topo = Topology::multi_server(2, 4);
    let mut fleet = ClusterManager::new(topo, HardwarePerf::new(), seed);
    for spec in seeded_workload(seed, &templates(), 8) {
        fleet.submit(spec);
    }
    fleet.run().unwrap()
}

#[test]
fn seeded_fleet_overlaps_three_jobs_on_one_topology() {
    let report = run_fleet(21);
    assert!(
        report.max_concurrent >= 3,
        "want >=3 overlapping jobs, got {}",
        report.max_concurrent
    );
    assert_eq!(report.deadlocks, 0);
    assert_eq!(report.jobs.len(), 5, "every submitted job departs");
    assert!(report.preemptions >= 1, "burst job must preempt");
    assert!(!report.utilization.is_empty());
    // The workload is shaped so the cluster saturates at the burst.
    assert!(
        report
            .utilization
            .iter()
            .any(|(_, busy, total)| busy == total),
        "the burst should fill the cluster"
    );
}

#[test]
fn same_seed_fleet_logs_are_byte_identical() {
    let a = run_fleet(21).event_log();
    let b = run_fleet(21).event_log();
    assert_eq!(a, b, "same-seed fleet runs must render identical logs");
    let c = run_fleet(22).event_log();
    assert_ne!(a, c, "different seeds must perturb the schedule");
}

/// Pinned: a job arriving with a model + allocation shape a sibling
/// already planned is served from the shared cache with zero planner
/// evaluations — the admission portfolio only performs lookups.
#[test]
fn twin_job_admission_is_a_pure_cache_hit() {
    let shared = Topology::multi_server(2, 4);
    let graph = Model::LeNet.training_graph(32);
    let cache = Arc::new(fastt::PlanCache::default());
    let config = |salt: u64| SessionConfig {
        profile_iters: 1,
        max_rounds: 2,
        cache_salt: salt,
        ..SessionConfig::default()
    };

    // Job 1 on server 0's first two GPUs: populates the cache.
    let alloc1 = Allocation::new(AllocationId(0), &shared, &[DeviceId(1), DeviceId(2)]);
    let s1 = TrainingSession::with_allocation(
        &graph,
        alloc1,
        HardwarePerf::new(),
        config(11),
        cache.clone(),
        None,
    )
    .unwrap();
    let hits_after_first = cache.hits();
    let misses_after_first = cache.misses();
    assert!(misses_after_first > 0, "first admission must plan for real");

    // Job 2 on server 1's first two GPUs: same model, same allocation
    // shape (twin slice), different raw device ids.
    let alloc2 = Allocation::new(AllocationId(1), &shared, &[DeviceId(6), DeviceId(7)]);
    let s2 = TrainingSession::with_allocation(
        &graph,
        alloc2,
        HardwarePerf::new(),
        config(22),
        cache.clone(),
        None,
    )
    .unwrap();
    assert!(
        cache.hits() > hits_after_first,
        "twin admission must hit the shared cache"
    );
    assert_eq!(
        cache.misses(),
        misses_after_first,
        "twin admission must not evaluate any planner (zero cache misses)"
    );
    // The cached plan was remapped onto job 2's devices: same shape,
    // disjoint placement, both valid on their own slices.
    assert_eq!(s1.started_data_parallel(), s2.started_data_parallel());
    let p1 = s1.current_plan();
    let p2 = s2.current_plan();
    p1.placement.validate(&p1.graph, s1.topology()).unwrap();
    p2.placement.validate(&p2.graph, s2.topology()).unwrap();
    let d1: BTreeSet<DeviceId> = p1
        .graph
        .iter_ops()
        .map(|(id, _)| p1.placement.device_of(id))
        .collect();
    let d2: BTreeSet<DeviceId> = p2
        .graph
        .iter_ops()
        .map(|(id, _)| p2.placement.device_of(id))
        .collect();
    assert!(d1.is_disjoint(&d2), "twin plans must not share devices");
}

/// Depth-sibling admission over the shared cache: a job whose model repeats
/// the same layer block as an admitted sibling but at a different depth
/// cannot reuse the whole plan (different graph fingerprint), yet the
/// hierarchical planner serves its repeated regions from the sibling's
/// region sub-plans — recorded on the separate region counters, so the
/// pinned twin-admission zero-miss invariant above is unaffected.
#[test]
fn depth_sibling_admission_reuses_region_sub_plans() {
    use fastt_graph::build_training_graph;
    use fastt_models::stacked_transformer;

    let shared = Topology::multi_server(2, 4);
    let g4 = build_training_graph(&stacked_transformer(64, 4)).unwrap();
    let g6 = build_training_graph(&stacked_transformer(64, 6)).unwrap();
    let cache = Arc::new(fastt::PlanCache::new(512));
    let config = || SessionConfig {
        profile_iters: 1,
        max_rounds: 2,
        ..SessionConfig::default()
    };

    let alloc1 = Allocation::new(AllocationId(0), &shared, &[DeviceId(1), DeviceId(2)]);
    let _s1 = TrainingSession::with_allocation(
        &g4,
        alloc1,
        HardwarePerf::new(),
        config(),
        cache.clone(),
        None,
    )
    .unwrap();
    assert!(
        cache.region_misses() > 0,
        "first admission must record region sub-plans"
    );
    let region_hits_after_first = cache.region_hits();

    // Same layer block, two layers deeper, on the other server's slice.
    let alloc2 = Allocation::new(AllocationId(1), &shared, &[DeviceId(6), DeviceId(7)]);
    let _s2 = TrainingSession::with_allocation(
        &g6,
        alloc2,
        HardwarePerf::new(),
        config(),
        cache.clone(),
        None,
    )
    .unwrap();
    assert!(
        cache.region_hits() > region_hits_after_first,
        "depth-sibling admission must reuse the sibling's region sub-plans \
         (region hits {} -> {})",
        region_hits_after_first,
        cache.region_hits(),
    );
}

/// Pinned: two identical jobs racing on the shared cache from separate
/// threads stay deterministic — whichever wins the insert, both end up
/// with the same plan, and the cache records exactly one planning pass.
#[test]
fn racing_twin_jobs_on_the_shared_cache_stay_deterministic() {
    let shared = Topology::multi_server(2, 4);
    let graph = Model::LeNet.training_graph(32);

    // Serial reference: what a lone job plans on a twin slice.
    let reference = TrainingSession::with_allocation(
        &graph,
        Allocation::new(AllocationId(9), &shared, &[DeviceId(1), DeviceId(2)]),
        HardwarePerf::new(),
        SessionConfig {
            profile_iters: 1,
            max_rounds: 2,
            ..SessionConfig::default()
        },
        Arc::new(fastt::PlanCache::default()),
        None,
    )
    .unwrap();

    for round in 0..4u64 {
        let cache = Arc::new(fastt::PlanCache::default());
        let slices = [
            vec![DeviceId(1), DeviceId(2)],
            vec![DeviceId(6), DeviceId(7)],
        ];
        let mut handles = Vec::new();
        for (i, gpus) in slices.iter().enumerate() {
            let shared = shared.clone();
            let graph = graph.clone();
            let gpus = gpus.clone();
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                let alloc = Allocation::new(AllocationId(i as u32), &shared, &gpus);
                let config = SessionConfig {
                    profile_iters: 1,
                    max_rounds: 2,
                    cache_salt: (round + 1) * 100 + i as u64,
                    ..SessionConfig::default()
                };
                TrainingSession::with_allocation(
                    &graph,
                    alloc,
                    HardwarePerf::new(),
                    config,
                    cache,
                    None,
                )
                .unwrap()
            }));
        }
        let sessions: Vec<TrainingSession> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // An op's placement in slice-local coordinates: its device's slot
        // in the allocation's member list (hosts map to a sentinel). Twin
        // slices must agree exactly in these coordinates.
        let canonical = |s: &TrainingSession| -> Vec<usize> {
            let p = s.current_plan();
            let members = s.allocation().members();
            p.graph
                .iter_ops()
                .map(|(id, _)| {
                    let d = p.placement.device_of(id);
                    members.iter().position(|m| *m == d).unwrap_or(usize::MAX)
                })
                .collect()
        };
        let want = canonical(&reference);
        for s in &sessions {
            // Both racers land on the reference outcome regardless of who
            // won the insert.
            assert_eq!(s.started_data_parallel(), reference.started_data_parallel());
            assert_eq!(
                canonical(s),
                want,
                "racer diverged from the serial reference plan"
            );
            let p = s.current_plan();
            p.placement.validate(&p.graph, s.topology()).unwrap();
        }
    }
}

/// Preempting a job never deadlocks or strands devices: after the burst
/// job finishes, every shrunken survivor is regrown, all jobs depart, and
/// no device is double-booked along the way.
#[test]
fn preemption_then_regrowth_strands_nothing() {
    let report = run_fleet(5);
    assert_eq!(report.deadlocks, 0);
    assert_eq!(report.jobs.len(), 5);
    let preempts = report
        .events
        .iter()
        .filter(|e| matches!(e, FleetEvent::Preempted { .. }))
        .count();
    let grows = report
        .events
        .iter()
        .filter(|e| matches!(e, FleetEvent::Expanded { .. }))
        .count();
    assert!(preempts >= 1, "burst must preempt");
    assert!(grows >= 1, "freed capacity must flow back to survivors");
    // The run drains completely: final utilization sample is zero busy.
    let (_, busy, _) = report.utilization.last().unwrap();
    assert_eq!(*busy, 0, "all devices must return to the pool");
    // Victims kept running: every preempted job still finished its
    // iteration budget.
    for j in &report.jobs {
        assert!(j.iters_run > 0, "job {} never ran", j.name);
    }
}

/// Per-job collectors: fleet telemetry interleaves into one stream with
/// job labels, and the planner.latency series (the admission-path SLO
/// input) is populated.
#[test]
fn fleet_telemetry_labels_jobs_and_feeds_the_admission_slo() {
    use fastt_telemetry::{Collector, MemorySink};

    let sink = Arc::new(MemorySink::new(65536));
    let collector = Arc::new(Collector::new().with_sink(sink.clone()));
    let topo = Topology::multi_server(2, 4);
    let mut fleet =
        ClusterManager::new(topo, HardwarePerf::new(), 21).with_collector(collector.clone());
    for spec in seeded_workload(21, &templates(), 8) {
        fleet.submit(spec);
    }
    let report = fleet.run().unwrap();
    assert_eq!(report.deadlocks, 0);

    let events = sink.events();
    let labeled = events
        .iter()
        .filter(|e| e.kind.starts_with("session.") && e.field("job").as_str().is_some())
        .count();
    assert!(
        labeled > 0,
        "session telemetry must carry the per-job label"
    );
    let job_names: BTreeSet<String> = events
        .iter()
        .filter_map(|e| e.field("job").as_str().map(str::to_string))
        .collect();
    assert!(
        job_names.len() >= 3,
        "at least the three overlapping jobs must label events, got {job_names:?}"
    );
    // The admission portfolio fed the planner.latency histogram the SLO
    // grades.
    match collector.metrics().get("planner.latency") {
        Some(fastt_telemetry::MetricValue::Histogram(h)) => assert!(h.count > 0),
        other => panic!("planner.latency missing: {other:?}"),
    }
    // And the fleet SLOs all evaluate against the same registry.
    let verdicts = fastt_telemetry::evaluate_slos(&fastt::fleet::fleet_slos(), collector.metrics());
    assert_eq!(verdicts.len(), 2);
}

/// A fleet job's spec floor is respected: preemption never shrinks a
/// victim below `min_gpus`.
#[test]
fn preemption_respects_min_gpu_floors() {
    let topo = Topology::multi_server(2, 4);
    let g = Model::LeNet.training_graph(32);
    let mut fleet = ClusterManager::new(topo, HardwarePerf::new(), 13);
    fleet.submit(JobSpec {
        name: "protected".into(),
        graph: g.clone(),
        arrival: 0,
        iters: 10,
        gpus: 4,
        min_gpus: 3,
        priority: 1,
        deadline: None,
    });
    fleet.submit(JobSpec {
        name: "greedy-hi".into(),
        graph: g,
        arrival: 2,
        iters: 3,
        gpus: 8,
        min_gpus: 1,
        priority: 9,
        deadline: None,
    });
    let report = fleet.run().unwrap();
    assert_eq!(report.deadlocks, 0);
    // The high-priority job can never assemble 8 GPUs (the floor holds 3
    // back), so it must wait for the protected job to finish rather than
    // shrink it below its floor.
    let protected_losses: usize = report
        .events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Preempted {
                victim, devices, ..
            } if victim == "protected" => Some(devices.len()),
            _ => None,
        })
        .sum();
    assert!(
        protected_losses <= 1,
        "protected job lost {protected_losses} GPUs, floor allows at most 1"
    );
    assert_eq!(report.jobs.len(), 2, "both jobs still depart");
}
