//! Hierarchical placement smoke tests (CI `hierarchical` step): the
//! decomposition collapses stacked models by an order of magnitude, the
//! expanded placement passes the flat planners' checker, arbitration stays
//! deterministic under a fixed seed, and depth-siblings reuse region-level
//! sub-plans from the shared cache.

use fastt::{
    DposPlanner, HierarchicalPlanner, PlanCache, Planner, PlanningContext, Portfolio,
    PortfolioInputs,
};
use fastt_cluster::Topology;
use fastt_cost::CostModels;
use fastt_graph::{build_training_graph, decompose, RegionKind};
use fastt_models::stacked_transformer;
use fastt_sim::{HardwarePerf, SimConfig};

#[test]
fn stacked_transformer_decomposes_an_order_of_magnitude() {
    let g = build_training_graph(&stacked_transformer(64, 8)).unwrap();
    let t = decompose(&g);
    let n = g.op_count();
    eprintln!(
        "ops={} regions={} rounds={} residual={} kinds: leaf={} chain={} bundle={} mixed={}",
        n,
        t.len(),
        t.rounds(),
        t.residual_regions().len(),
        t.regions()
            .filter(|(_, r)| r.kind == RegionKind::Leaf)
            .count(),
        t.regions()
            .filter(|(_, r)| r.kind == RegionKind::Chain)
            .count(),
        t.regions()
            .filter(|(_, r)| r.kind == RegionKind::Bundle)
            .count(),
        t.regions()
            .filter(|(_, r)| r.kind == RegionKind::Mixed)
            .count(),
    );
    assert!(t.len() < n / 10, "regions {} !< ops/10 {}", t.len(), n / 10);
}

/// The CI smoke: a seeded decompose + plan on the stacked Transformer.
/// The expanded placement must validate, and racing hierarchical against
/// flat DPOS under probe-and-pick arbitration must pick the same winner
/// with the same placement on every same-seed run.
#[test]
fn hierarchical_plan_validates_and_arbitration_is_deterministic() {
    let g = build_training_graph(&stacked_transformer(64, 8)).unwrap();
    let topo = Topology::multi_server(2, 2);
    let hw = HardwarePerf::new();
    let cost = fastt::bootstrap_cost_models(&g, &topo, &hw);

    let run = || {
        let portfolio = Portfolio::new()
            .with(Box::new(DposPlanner))
            .with(Box::<HierarchicalPlanner>::default());
        let inputs = PortfolioInputs {
            graph: &g,
            raw: Some(&g),
            current: None,
            topo: &topo,
            hw: &hw,
            cost: &cost,
            collector: None,
            enable_order: true,
            dp_ps: None,
            cache_salt: 0,
            probe: Some(SimConfig {
                seed: 7,
                ..SimConfig::default()
            }),
        };
        portfolio.evaluate(&inputs, None)
    };

    let mut a = run();
    let b = run();
    assert_eq!(a.winner, b.winner, "same-seed arbitration must agree");
    for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
        assert_eq!(ca.planner, cb.planner);
        assert_eq!(ca.simulated, cb.simulated, "{} probe drifted", ca.planner);
        let (pa, pb) = (ca.plan.as_ref().unwrap(), cb.plan.as_ref().unwrap());
        assert_eq!(
            pa.placement, pb.placement,
            "{} placement drifted across same-seed runs",
            ca.planner
        );
    }

    // The hierarchical candidate is present, probed, and valid.
    let hier = a
        .candidates
        .iter_mut()
        .find(|c| c.planner == "hierarchical")
        .expect("hierarchical raced");
    assert!(hier.simulated.is_some(), "hierarchical probe must succeed");
    let plan = hier.plan.take().unwrap();
    plan.placement.validate(&plan.graph, &topo).unwrap();
}

/// Region-granular cache reuse: two stacked Transformers differing only in
/// depth share no whole-plan fingerprint, but their repeated layers hash to
/// the same regions — the second plan is served region sub-plans recorded
/// by the first.
#[test]
fn depth_siblings_share_region_sub_plans() {
    let g4 = build_training_graph(&stacked_transformer(64, 4)).unwrap();
    let g6 = build_training_graph(&stacked_transformer(64, 6)).unwrap();
    let topo = Topology::multi_server(1, 4);
    let hw = HardwarePerf::new();
    let cache = PlanCache::new(512);

    let mut ctx4 =
        PlanningContext::new(&g4, &topo, &hw, CostModels::new()).with_region_cache(&cache, 0);
    HierarchicalPlanner::default().plan(&mut ctx4).unwrap();
    assert!(
        cache.region_misses() > 0,
        "first plan must record region sub-plans"
    );
    let hits_before = cache.region_hits();

    let mut ctx6 =
        PlanningContext::new(&g6, &topo, &hw, CostModels::new()).with_region_cache(&cache, 0);
    HierarchicalPlanner::default().plan(&mut ctx6).unwrap();
    assert!(
        cache.region_hits() > hits_before,
        "depth sibling must be served from region sub-plans \
         (hits {} -> {}, misses {})",
        hits_before,
        cache.region_hits(),
        cache.region_misses(),
    );

    // Region traffic is accounted separately: the whole-plan counters the
    // fleet's pinned twin-admission invariant reads stay untouched.
    assert_eq!(cache.hits(), 0);
    assert_eq!(cache.misses(), 0);
}
