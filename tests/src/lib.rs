//! Host crate for the FastT cross-crate integration tests.
//!
//! The tests live in `tests/tests/` and exercise the full pipeline:
//! model builders → rewrites → cost-model learning → DPOS/OS-DPOS →
//! the training session → the simulator.
